/**
 * @file
 * Fluent programmatic construction of VASM kernels with label resolution
 * and automatic reconvergence-point computation.
 */

#ifndef VTSIM_ISA_KERNEL_BUILDER_HH
#define VTSIM_ISA_KERNEL_BUILDER_HH

#include <map>
#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace vtsim {

/**
 * Builds a Kernel instruction by instruction.
 *
 * Register pressure is inferred from the highest register touched, but can
 * be padded upward with minRegs() — benchmarks use that to place
 * themselves on either side of the capacity limit, which is exactly the
 * knob the paper's workload classification turns on.
 *
 * Branch reconvergence PCs: for `bra` with an explicit join label, the
 * label's PC; for a forward branch without one, the branch target (the
 * if-then idiom); for a backward branch, the fall-through PC (the loop
 * idiom). These are the immediate post-dominators for those shapes.
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name) : name_(std::move(name)) {}

    /** Declare at least @p n registers per thread (pads pressure). */
    KernelBuilder &minRegs(std::uint32_t n);

    /** Declare @p bytes of static shared memory per CTA. */
    KernelBuilder &shared(std::uint32_t bytes);

    /** Attach a label to the next emitted instruction. */
    KernelBuilder &label(const std::string &name);

    // --- ALU -------------------------------------------------------------
    KernelBuilder &mov(RegIndex dst, RegIndex src);
    KernelBuilder &movi(RegIndex dst, std::int32_t imm);
    /** Three-operand register form: dst = src0 <op> src1. */
    KernelBuilder &alu(Opcode op, RegIndex dst, RegIndex a, RegIndex b);
    /** Register-immediate form: dst = src0 <op> imm. */
    KernelBuilder &alui(Opcode op, RegIndex dst, RegIndex a,
                        std::int32_t imm);
    /** Unary form (NOT, I2F, F2I, FRCP, FSQRT, FEXP, FLOG). */
    KernelBuilder &unary(Opcode op, RegIndex dst, RegIndex a);
    /** dst = a * b + c (IMAD / FFMA). */
    KernelBuilder &mad(Opcode op, RegIndex dst, RegIndex a, RegIndex b,
                       RegIndex c);
    KernelBuilder &setp(Opcode op, CmpOp cmp, RegIndex dst, RegIndex a,
                        RegIndex b);
    KernelBuilder &setpi(Opcode op, CmpOp cmp, RegIndex dst, RegIndex a,
                         std::int32_t imm);
    KernelBuilder &sel(RegIndex dst, RegIndex a, RegIndex b, RegIndex cond);

    // --- Special ----------------------------------------------------------
    KernelBuilder &s2r(RegIndex dst, SpecialReg sreg);
    KernelBuilder &ldp(RegIndex dst, std::uint32_t param_index);

    // --- Memory -------------------------------------------------------------
    KernelBuilder &ldg(RegIndex dst, RegIndex addr, std::int32_t offset = 0,
                       CacheOp cache_op = CacheOp::CacheAll);
    KernelBuilder &stg(RegIndex addr, RegIndex value,
                       std::int32_t offset = 0);
    KernelBuilder &lds(RegIndex dst, RegIndex addr, std::int32_t offset = 0);
    KernelBuilder &sts(RegIndex addr, RegIndex value,
                       std::int32_t offset = 0);
    KernelBuilder &atomgAdd(RegIndex dst, RegIndex addr, RegIndex value,
                            std::int32_t offset = 0);

    // --- Control -------------------------------------------------------------
    /** Branch to @p target for lanes where @p pred != 0. */
    KernelBuilder &bra(RegIndex pred, const std::string &target,
                       const std::string &join = "");
    /** Unconditional jump (all active lanes). */
    KernelBuilder &jmp(const std::string &target);
    KernelBuilder &bar();
    KernelBuilder &exit();
    KernelBuilder &nop();

    /** Resolve labels, compute reconvergence PCs, and build. */
    Kernel build();

  private:
    Instruction &emit(Opcode op);
    void touch(RegIndex reg);

    struct PendingBranch
    {
        Pc pc;
        std::string target;
        std::string join; ///< empty = compute default
    };

    std::string name_;
    std::vector<Instruction> instrs_;
    std::map<std::string, Pc> labels_;
    std::map<Pc, std::string> labelByPc_;
    std::vector<PendingBranch> pending_;
    std::vector<std::string> nextLabels_;
    std::uint32_t minRegs_ = 0;
    std::uint32_t maxRegTouched_ = 0;
    std::uint32_t sharedBytes_ = 0;
    bool built_ = false;
};

} // namespace vtsim

#endif // VTSIM_ISA_KERNEL_BUILDER_HH
