#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/trace.hh"
#include "sim/serialize_util.hh"
#include "telemetry/trace_json.hh"

namespace vtsim {

Dram::Dram(const DramParams &params)
    : params_(params), banks_(params.numBanks), stats_(params.name)
{
    VTSIM_ASSERT(params.numBanks > 0 && params.bytesPerCycle > 0,
                 "degenerate DRAM shape");
    stats_.addCounter("row_hits", &rowHits_, "row-buffer hits");
    stats_.addCounter("row_misses", &rowMisses_,
                      "row-buffer misses (activate+precharge)");
    stats_.addCounter("bytes", &bytes_, "bytes moved over the data bus");
    for (std::uint32_t g = 0; g < maxGrids; ++g) {
        const std::string tag = "grid" + std::to_string(g);
        const std::string suffix = " for grid " + std::to_string(g);
        stats_.addCounter(tag + ".row_hits", &gridRowHits_[g],
                          "row-buffer hits" + suffix);
        stats_.addCounter(tag + ".row_misses", &gridRowMisses_[g],
                          "row-buffer misses" + suffix);
        stats_.addCounter(tag + ".bytes", &gridBytes_[g],
                          "data-bus bytes" + suffix);
    }
    stats_.addScalar("queue_depth", &queueDepth_,
                     "scheduler queue depth per enqueue");
}

void
Dram::enqueue(Addr line_addr, std::uint32_t bytes, bool needs_completion,
              Cycle now, GridId grid)
{
    (void)now;
    Request req;
    req.lineAddr = line_addr;
    req.bytes = std::max(bytes, 1u);
    req.needsCompletion = needs_completion;
    req.grid = grid;
    // Renumber lines partition-locally (disjoint bits from partition
    // selection), then interleave across banks; rows stack above that.
    const std::uint64_t local_line =
        line_addr / params_.lineSize / std::max(params_.addressStride, 1u);
    const std::uint64_t lines_per_row =
        std::max(params_.rowBufferBytes / params_.lineSize, 1u);
    req.bank = local_line % params_.numBanks;
    req.row = local_line / (params_.numBanks * lines_per_row);
    queue_.push_back(req);
    queueDepth_.sample(static_cast<double>(queue_.size()));
}

bool
Dram::issueOne(Cycle now)
{
    // FR-FCFS over a bounded window: first pass prefers row hits at free
    // banks, second pass takes the oldest request at any free bank.
    const std::size_t window =
        std::min<std::size_t>(queue_.size(), params_.schedWindow);

    std::size_t chosen = window;
    for (std::size_t i = 0; i < window; ++i) {
        const Request &req = queue_[i];
        const Bank &bank = banks_[req.bank];
        if (bank.readyAt <= now && bank.openRow == req.row) {
            chosen = i;
            break;
        }
    }
    if (chosen == window) {
        for (std::size_t i = 0; i < window; ++i) {
            if (banks_[queue_[i].bank].readyAt <= now) {
                chosen = i;
                break;
            }
        }
    }
    if (chosen == window)
        return false;

    const Request req = queue_[chosen];
    queue_.erase(queue_.begin() + chosen);
    Bank &bank = banks_[req.bank];

    VTSIM_TRACE(TraceFlag::Dram, now, stats_.name(), "issue line 0x",
                std::hex, req.lineAddr, std::dec, " bank ", req.bank,
                bank.openRow == req.row ? " (row hit)" : " (row miss)");
    if (traceJson_) {
        traceJson_->instant(tracePid_, req.bank, now,
                            bank.openRow == req.row ? "row-hit"
                                                    : "row-miss",
                            "dram");
    }
    Cycle latency;
    Cycle occupancy;
    if (bank.openRow == req.row) {
        latency = params_.rowHitLatency;
        occupancy = params_.rowHitOccupancy;
        ++rowHits_;
        ++gridRowHits_[req.grid];
    } else {
        latency = params_.rowMissLatency;
        occupancy = params_.rowMissOccupancy;
        bank.openRow = req.row;
        ++rowMisses_;
        ++gridRowMisses_[req.grid];
    }

    // The bank is occupied only while its commands issue; the access
    // latency itself is pipelined and overlaps with other banks.
    const Cycle data_cycles = ceilDiv(req.bytes, params_.bytesPerCycle);
    bank.readyAt = now + occupancy;
    const Cycle bus_start = std::max(now + latency, busReadyAt_);
    const Cycle done = bus_start + data_cycles;
    busReadyAt_ = bus_start + data_cycles;
    bytes_ += req.bytes;
    gridBytes_[req.grid] += req.bytes;

    inFlight_.push({done, req.lineAddr, req.needsCompletion});
    return true;
}

std::vector<Addr>
Dram::advance(Cycle now)
{
    std::vector<Addr> completed;
    while (!inFlight_.empty() && inFlight_.top().readyAt <= now) {
        if (inFlight_.top().needsCompletion)
            completed.push_back(inFlight_.top().lineAddr);
        inFlight_.pop();
    }
    for (std::uint32_t c = 0; c < params_.commandsPerCycle; ++c) {
        if (!issueOne(now))
            break;
    }
    return completed;
}

Cycle
Dram::nextEventCycle(Cycle now)
{
    Cycle next = neverCycle;
    if (!inFlight_.empty())
        next = std::min(next, std::max(now, inFlight_.top().readyAt));
    // A queued request issues as soon as its bank frees; only requests
    // inside the FR-FCFS window are candidates, exactly as issueOne()
    // scans them.
    const std::size_t window =
        std::min<std::size_t>(queue_.size(), params_.schedWindow);
    for (std::size_t i = 0; i < window; ++i) {
        const Cycle bank_free = banks_[queue_[i].bank].readyAt;
        next = std::min(next, std::max(now, bank_free));
    }
    return next;
}

bool
Dram::idle() const
{
    return queue_.empty() && inFlight_.empty();
}

void
Dram::reset()
{
    for (auto &bank : banks_)
        bank = Bank{};
    queue_.clear();
    inFlight_ = {};
    busReadyAt_ = 0;
    rowHits_.reset();
    rowMisses_.reset();
    bytes_.reset();
    for (std::uint32_t g = 0; g < maxGrids; ++g) {
        gridRowHits_[g].reset();
        gridRowMisses_[g].reset();
        gridBytes_[g].reset();
    }
    queueDepth_.reset();
}

void
Dram::save(Serializer &ser) const
{
    const std::size_t sec = ser.beginSection("dram");
    ser.putVec(banks_);
    ser.put<std::uint64_t>(queue_.size());
    for (const Request &req : queue_) {
        ser.put(req.lineAddr);
        ser.put(req.bytes);
        ser.put<std::uint8_t>(req.needsCompletion);
        ser.put(req.bank);
        ser.put(req.row);
        ser.put(req.grid);
    }
    // Drain a copy of the completion heap; re-pushing on restore
    // rebuilds an equivalent heap.
    auto in_flight = inFlight_;
    ser.put<std::uint64_t>(in_flight.size());
    while (!in_flight.empty()) {
        const Completion &c = in_flight.top();
        ser.put(c.readyAt);
        ser.put(c.lineAddr);
        ser.put<std::uint8_t>(c.needsCompletion);
        in_flight.pop();
    }
    ser.put(busReadyAt_);
    saveStat(ser, rowHits_);
    saveStat(ser, rowMisses_);
    saveStat(ser, bytes_);
    for (std::uint32_t g = 0; g < maxGrids; ++g) {
        saveStat(ser, gridRowHits_[g]);
        saveStat(ser, gridRowMisses_[g]);
        saveStat(ser, gridBytes_[g]);
    }
    saveStat(ser, queueDepth_);
    ser.endSection(sec);
}

void
Dram::restore(Deserializer &des)
{
    des.beginSection("dram");
    const std::size_t num_banks = banks_.size();
    des.getVec(banks_);
    VTSIM_ASSERT(banks_.size() == num_banks, "DRAM bank-count mismatch");
    queue_.clear();
    const auto queued = des.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < queued; ++i) {
        Request req;
        des.get(req.lineAddr);
        des.get(req.bytes);
        req.needsCompletion = des.get<std::uint8_t>() != 0;
        des.get(req.bank);
        des.get(req.row);
        des.get(req.grid);
        queue_.push_back(req);
    }
    inFlight_ = {};
    const auto in_flight = des.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < in_flight; ++i) {
        Completion c;
        des.get(c.readyAt);
        des.get(c.lineAddr);
        c.needsCompletion = des.get<std::uint8_t>() != 0;
        inFlight_.push(c);
    }
    des.get(busReadyAt_);
    restoreStat(des, rowHits_);
    restoreStat(des, rowMisses_);
    restoreStat(des, bytes_);
    for (std::uint32_t g = 0; g < maxGrids; ++g) {
        restoreStat(des, gridRowHits_[g]);
        restoreStat(des, gridRowMisses_[g]);
        restoreStat(des, gridBytes_[g]);
    }
    restoreStat(des, queueDepth_);
    des.endSection();
}

} // namespace vtsim
