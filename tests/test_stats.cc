/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace vtsim {
namespace {

TEST(Counter, StartsAtZeroAndCounts)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 5;
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, EmptyIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(s.maxValue(), 0.0);
}

TEST(ScalarStat, TracksMinMaxMean)
{
    ScalarStat s;
    s.sample(4.0);
    s.sample(-2.0);
    s.sample(10.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.minValue(), -2.0);
    EXPECT_DOUBLE_EQ(s.maxValue(), 10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10.0); // [0,10) [10,20) [20,30) [30,40)
    h.sample(0.0);
    h.sample(9.99);
    h.sample(10.0);
    h.sample(35.0);
    h.sample(40.0);  // overflow
    h.sample(-1.0);  // negative counts as overflow
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucket(0), 0u);
}

TEST(Histogram, PercentileReturnsUpperBucketEdge)
{
    Histogram h(4, 10.0); // [0,10) [10,20) [20,30) [30,40)
    h.sample(1.0);
    h.sample(2.0);
    h.sample(12.0);
    h.sample(33.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);  // rank 2 -> bucket 0
    EXPECT_DOUBLE_EQ(h.percentile(0.75), 20.0); // rank 3 -> bucket 1
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 40.0);  // rank 4 -> bucket 3
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);  // rank clamps to 1
}

TEST(Histogram, PercentileOverflowAndEmpty)
{
    Histogram h(2, 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0); // empty histogram
    h.sample(100.0);                          // lands in overflow
    // All mass above the last bucket: report the histogram's ceiling.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
}

TEST(Histogram, PercentileOfDeltaBuckets)
{
    // The interval sampler diffs raw bucket vectors between samples and
    // ranks the delta directly.
    const std::vector<std::uint64_t> buckets{0, 3, 1, 0};
    EXPECT_DOUBLE_EQ(Histogram::percentileOf(buckets, 0, 2.0, 0.5), 4.0);
    EXPECT_DOUBLE_EQ(Histogram::percentileOf(buckets, 2, 2.0, 0.95), 8.0);
    EXPECT_DOUBLE_EQ(Histogram::percentileOf({}, 0, 2.0, 0.5), 0.0);
}

TEST(Histogram, Shape)
{
    Histogram h(8, 2.5);
    EXPECT_EQ(h.bucketCount(), 8u);
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 2.5);
}

TEST(StatGroup, CounterValueLookup)
{
    StatGroup g("grp");
    Counter c;
    c += 3;
    g.addCounter("events", &c, "some events");
    EXPECT_EQ(g.counterValue("events"), 3u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
}

TEST(StatGroup, DumpContainsAllStats)
{
    StatGroup g("sm0");
    Counter c;
    c += 42;
    ScalarStat s;
    s.sample(2.0);
    Histogram h(2, 1.0);
    h.sample(0.5);
    g.addCounter("instr", &c, "instructions");
    g.addScalar("occ", &s, "occupancy");
    g.addHistogram("lat", &h, "latency");

    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sm0.instr 42"), std::string::npos);
    EXPECT_NE(out.find("sm0.occ.mean 2"), std::string::npos);
    EXPECT_NE(out.find("sm0.lat.total 1"), std::string::npos);
    EXPECT_NE(out.find("instructions"), std::string::npos);
}

TEST(StatGroup, ValueEntriesDumpLikeCounters)
{
    StatGroup g("sm0");
    std::uint64_t raw = 7;
    g.addValue("issue.issued", &raw, "issued cycles");
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("sm0.issue.issued 7"), std::string::npos);
    ASSERT_EQ(g.values().count("issue.issued"), 1u);
    EXPECT_EQ(*g.values().at("issue.issued").stat, 7u);
}

TEST(StatGroup, NameAccessor)
{
    StatGroup g("abc");
    EXPECT_EQ(g.name(), "abc");
}

} // namespace
} // namespace vtsim
