#include "stats/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "common/log.hh"

namespace vtsim {

void
ScalarStat::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
ScalarStat::sampleN(double v, std::uint64_t n)
{
    if (n == 0)
        return;
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += n;
    // Repeated addition, not v * n: keep the rounding sequence of the
    // per-cycle loop so fast-forward is bit-identical.
    for (std::uint64_t i = 0; i < n; ++i)
        sum_ += v;
}

void
ScalarStat::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(std::uint32_t bucket_count, double bucket_width)
    : buckets_(bucket_count, 0), bucketWidth_(bucket_width)
{
    VTSIM_ASSERT(bucket_count > 0 && bucket_width > 0,
                 "degenerate histogram shape");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < 0) {
        ++overflow_;
        return;
    }
    const auto idx = static_cast<std::uint64_t>(v / bucketWidth_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

double
Histogram::percentileOf(const std::vector<std::uint64_t> &buckets,
                        std::uint64_t overflow, double bucket_width,
                        double p)
{
    std::uint64_t total = overflow;
    for (auto b : buckets)
        total += b;
    if (total == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // Rank of the sample we are looking for, 1-based: the smallest rank
    // such that at least p * total samples are at or below it.
    auto rank = static_cast<std::uint64_t>(std::ceil(p * total));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank)
            return (i + 1) * bucket_width;
    }
    // Rank falls in the overflow region; report the range's upper edge.
    return buckets.size() * bucket_width;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

void
StatGroup::addCounter(const std::string &name, const Counter *c,
                      const std::string &desc)
{
    counters_[name] = {c, desc};
}

void
StatGroup::addValue(const std::string &name, const std::uint64_t *v,
                    const std::string &desc)
{
    values_[name] = {v, desc};
}

void
StatGroup::addScalar(const std::string &name, const ScalarStat *s,
                     const std::string &desc)
{
    scalars_[name] = {s, desc};
}

void
StatGroup::addHistogram(const std::string &name, const Histogram *h,
                        const std::string &desc)
{
    histograms_[name] = {h, desc};
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.stat->value();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, entry] : counters_) {
        os << name_ << '.' << name << ' ' << entry.stat->value()
           << "  # " << entry.desc << '\n';
    }
    for (const auto &[name, entry] : values_) {
        os << name_ << '.' << name << ' ' << *entry.stat
           << "  # " << entry.desc << '\n';
    }
    for (const auto &[name, entry] : scalars_) {
        os << name_ << '.' << name << ".mean " << std::setprecision(6)
           << entry.stat->mean() << "  # " << entry.desc << '\n';
    }
    for (const auto &[name, entry] : histograms_) {
        os << name_ << '.' << name << ".total " << entry.stat->total()
           << "  # " << entry.desc << '\n';
    }
}

} // namespace vtsim
