/**
 * @file
 * FIG-8: issue-slot breakdown — where scheduler cycles go on the
 * baseline versus under Virtual Thread, plus memory-system behaviour.
 * Expected shape: VT converts memory-stall cycles into issue cycles on
 * the scheduling-limited benchmarks.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "parallel_runner.hh"

namespace {

void
printRow(const char *name, const char *machine,
         const vtsim::KernelStats &s)
{
    const auto &b = s.stalls;
    const double total = double(b.issued) + b.memStall + b.shortStall +
                         b.barrierStall + b.swapStall + b.idle;
    std::printf("%-14s %-5s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% "
                "%7.1f%% | %5.1f%% %5.1f%%\n",
                name, machine, 100 * b.issued / total,
                100 * b.memStall / total, 100 * b.shortStall / total,
                100 * b.barrierStall / total, 100 * b.swapStall / total,
                100 * b.idle / total, 100 * s.l1HitRate(),
                100 * s.l2HitRate());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-8", "scheduler-cycle breakdown and cache behaviour");
    const GpuConfig base = GpuConfig::fermiLike();
    GpuConfig vt = base;
    vt.vtEnabled = true;
    const char *subset[] = {"vecadd", "saxpy", "stencil", "histogram",
                            "reduce", "bfs", "matmul"};

    std::vector<RunSpec> specs;
    for (const char *name : subset) {
        specs.push_back({name, base, benchScale});
        specs.push_back({name, vt, benchScale});
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s %-5s %8s %8s %8s %8s %8s %8s | %5s %5s\n",
                "benchmark", "mach", "issue", "mem", "short", "barrier",
                "swap", "idle", "l1", "l2");
    for (std::size_t w = 0; w < std::size(subset); ++w) {
        printRow(subset[w], "base", results[2 * w].stats);
        printRow(subset[w], "vt", results[2 * w + 1].stats);
    }
    return 0;
}
