#include "telemetry/stat_registry.hh"

#include "common/log.hh"

namespace vtsim::telemetry {

void
StatRegistry::addGroup(const StatGroup &group)
{
    groups_.push_back(&group);
    const std::string prefix = group.name() + '.';
    for (const auto &[name, entry] : group.counters()) {
        ScalarProbe p;
        p.path = prefix + name;
        p.counter = entry.stat;
        scalars_.push_back(std::move(p));
    }
    for (const auto &[name, entry] : group.values()) {
        ScalarProbe p;
        p.path = prefix + name;
        p.value = entry.stat;
        scalars_.push_back(std::move(p));
    }
    for (const auto &[name, entry] : group.scalars())
        dists_.push_back({prefix + name, entry.stat});
    for (const auto &[name, entry] : group.histograms())
        hists_.push_back({prefix + name, entry.stat});
}

void
StatRegistry::setRole(const std::string &path, KernelStatRole role,
                      std::int32_t grid)
{
    for (auto &probe : scalars_) {
        if (probe.path == path) {
            probe.role = role;
            probe.grid = grid;
            return;
        }
    }
    VTSIM_FATAL("no scalar stat registered at '", path, "'");
}

void
StatRegistry::collectScalars(std::vector<std::uint64_t> &out) const
{
    out.resize(scalars_.size());
    for (std::size_t i = 0; i < scalars_.size(); ++i)
        out[i] = scalars_[i].read();
}

} // namespace vtsim::telemetry
