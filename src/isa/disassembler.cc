#include "isa/disassembler.hh"

#include <map>
#include <set>
#include <sstream>

#include "common/log.hh"

namespace vtsim {

namespace {

std::string
regName(RegIndex r)
{
    return "r" + std::to_string(r);
}

std::string
memRef(RegIndex base, std::int32_t off)
{
    std::ostringstream os;
    os << '[' << regName(base);
    if (off > 0)
        os << '+' << off;
    else if (off < 0)
        os << off;
    os << ']';
    return os.str();
}

/** Default reconvergence PC the builder would compute for this branch. */
Pc
defaultReconverge(Pc pc, Pc target)
{
    return target > pc ? target : pc + 1;
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    switch (inst.op) {
      case Opcode::NOP:
      case Opcode::BAR:
      case Opcode::EXIT:
        os << toString(inst.op);
        break;
      case Opcode::MOV:
        os << "mov " << regName(inst.dst) << ", " << regName(inst.src[0]);
        break;
      case Opcode::MOVI:
        os << "movi " << regName(inst.dst) << ", " << inst.imm;
        break;
      case Opcode::S2R:
        os << "s2r " << regName(inst.dst) << ", " << toString(inst.sreg);
        break;
      case Opcode::LDP:
        os << "ldp " << regName(inst.dst) << ", " << inst.imm;
        break;
      case Opcode::LDG:
      case Opcode::LDS:
        os << toString(inst.op);
        if (inst.op == Opcode::LDG &&
            inst.cacheOp == CacheOp::Streaming) {
            os << ".cg";
        }
        os << ' ' << regName(inst.dst) << ", "
           << memRef(inst.src[0], inst.imm);
        break;
      case Opcode::STG:
      case Opcode::STS:
        os << toString(inst.op) << ' ' << memRef(inst.src[0], inst.imm)
           << ", " << regName(inst.src[1]);
        break;
      case Opcode::ATOMG_ADD:
        os << "atomg.add " << regName(inst.dst) << ", "
           << memRef(inst.src[0], inst.imm) << ", "
           << regName(inst.src[1]);
        break;
      case Opcode::ISETP:
      case Opcode::FSETP:
        os << toString(inst.op) << '.' << toString(inst.cmp) << ' '
           << regName(inst.dst) << ", " << regName(inst.src[0]) << ", ";
        if (inst.useImm)
            os << inst.imm;
        else
            os << regName(inst.src[1]);
        break;
      case Opcode::SEL:
        os << "sel " << regName(inst.dst) << ", " << regName(inst.src[0])
           << ", " << regName(inst.src[1]) << ", "
           << regName(inst.src[2]);
        break;
      case Opcode::IMAD:
      case Opcode::FFMA:
        os << toString(inst.op) << ' ' << regName(inst.dst) << ", "
           << regName(inst.src[0]) << ", " << regName(inst.src[1]) << ", "
           << regName(inst.src[2]);
        break;
      case Opcode::NOT:
      case Opcode::I2F:
      case Opcode::F2I:
      case Opcode::FRCP:
      case Opcode::FSQRT:
      case Opcode::FEXP:
      case Opcode::FLOG:
        os << toString(inst.op) << ' ' << regName(inst.dst) << ", "
           << regName(inst.src[0]);
        break;
      case Opcode::BRA:
        // Target/join rendered by the kernel-level disassembler; standalone
        // form shows raw PCs.
        os << "bra ";
        if (inst.src[0] != noReg)
            os << regName(inst.src[0]) << ", ";
        os << "@" << inst.branchTarget;
        break;
      default:
        os << toString(inst.op) << ' ';
        if (inst.hasDst())
            os << regName(inst.dst) << ", ";
        os << regName(inst.src[0]) << ", ";
        if (inst.useImm)
            os << inst.imm;
        else
            os << regName(inst.src[1]);
        break;
    }
    return os.str();
}

std::string
disassemble(const Kernel &kernel)
{
    // Collect every PC that needs a label: existing labels, branch targets
    // and non-default reconvergence points.
    std::map<Pc, std::string> labels;
    for (Pc pc = 0; pc < kernel.size(); ++pc) {
        const std::string l = kernel.labelAt(pc);
        if (!l.empty())
            labels[pc] = l;
    }
    std::set<Pc> needed;
    for (Pc pc = 0; pc < kernel.size(); ++pc) {
        const Instruction &inst = kernel.at(pc);
        if (!inst.isBranch())
            continue;
        needed.insert(inst.branchTarget);
        if (inst.reconvergePc != defaultReconverge(pc, inst.branchTarget))
            needed.insert(inst.reconvergePc);
    }
    for (Pc pc : needed)
        if (!labels.count(pc))
            labels[pc] = "L" + std::to_string(pc);

    std::ostringstream os;
    os << ".kernel " << kernel.name() << '\n';
    os << ".regs " << kernel.regsPerThread() << '\n';
    if (kernel.sharedBytesPerCta())
        os << ".shared " << kernel.sharedBytesPerCta() << '\n';

    for (Pc pc = 0; pc < kernel.size(); ++pc) {
        auto lit = labels.find(pc);
        if (lit != labels.end())
            os << lit->second << ":\n";
        const Instruction &inst = kernel.at(pc);
        os << "    ";
        if (inst.isBranch()) {
            VTSIM_ASSERT(labels.count(inst.branchTarget), "missing label");
            if (inst.src[0] == noReg) {
                // Unconditional: render as jmp (the assembler's spelling).
                os << "jmp " << labels.at(inst.branchTarget);
            } else {
                os << "bra " << regName(inst.src[0]) << ", "
                   << labels.at(inst.branchTarget);
                if (inst.reconvergePc !=
                    defaultReconverge(pc, inst.branchTarget)) {
                    os << ", join=" << labels.at(inst.reconvergePc);
                }
            }
        } else {
            os << disassemble(inst);
        }
        os << '\n';
    }
    return os.str();
}

} // namespace vtsim
