/**
 * @file
 * Property-based tests: randomly generated structured kernels must
 * produce bit-identical results on every machine variant — baseline,
 * Virtual Thread, every warp scheduler, and different chip shapes.
 * Timing models may differ; architectural results may not.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "gpu/gpu.hh"
#include "isa/kernel_builder.hh"
#include "test_util.hh"

namespace vtsim {
namespace {

constexpr std::uint32_t kInWords = 1024; // power of two
constexpr std::uint32_t kOutWords = 512; // one per thread

/**
 * Generate a random but well-structured kernel:
 *  - a data-dependent prologue (load from the input buffer),
 *  - a random mix of ALU blocks, divergent if-thens, divergent bounded
 *    loops, private shared-memory round trips, and extra loads,
 *  - an epilogue storing a mixing hash of the working registers.
 * The kernel only writes out[gid] and shared[tid], so results are
 * schedule-independent.
 */
Kernel
randomKernel(std::uint64_t seed)
{
    Rng rng(seed);
    KernelBuilder kb("rand" + std::to_string(seed));
    kb.shared(512);

    kb.ldp(0, 0).ldp(1, 1); // in, out
    kb.s2r(2, SpecialReg::CtaIdX)
      .s2r(3, SpecialReg::NTidX)
      .s2r(4, SpecialReg::TidX);
    kb.mad(Opcode::IMAD, 5, 2, 3, 4); // r5 = gid
    kb.alui(Opcode::AND, 6, 5, kInWords - 1);
    kb.alui(Opcode::SHL, 6, 6, 2);
    kb.alu(Opcode::IADD, 6, 6, 0);
    kb.ldg(7, 6); // r7 = in[gid & mask]

    // Working registers r8..r12 seeded from gid and the loaded word.
    for (RegIndex r = 8; r <= 12; ++r) {
        kb.alui(Opcode::XOR, r, (r % 2) ? 5 : 7,
                static_cast<std::int32_t>(rng.next() & 0xffff));
    }

    const Opcode alu_ops[] = {Opcode::IADD, Opcode::ISUB, Opcode::IMUL,
                              Opcode::AND, Opcode::OR, Opcode::XOR,
                              Opcode::IMIN, Opcode::IMAX};
    int label_id = 0;
    auto rand_work_reg = [&rng]() -> RegIndex {
        return 8 + rng.nextBelow(5);
    };
    auto emit_alu_run = [&](std::uint32_t len) {
        for (std::uint32_t i = 0; i < len; ++i) {
            const Opcode op = alu_ops[rng.nextBelow(8)];
            if (rng.nextBool()) {
                kb.alui(op, rand_work_reg(), rand_work_reg(),
                        static_cast<std::int32_t>(rng.next() & 0xff) + 1);
            } else {
                kb.alu(op, rand_work_reg(), rand_work_reg(),
                       rand_work_reg());
            }
        }
    };

    const std::uint32_t segments = 3 + rng.nextBelow(5);
    for (std::uint32_t s = 0; s < segments; ++s) {
        switch (rng.nextBelow(5)) {
          case 0: // plain ALU block
            emit_alu_run(2 + rng.nextBelow(6));
            break;
          case 1: { // divergent if-then
            const std::string skip = "skip" + std::to_string(label_id++);
            kb.alui(Opcode::AND, 13, rand_work_reg(),
                    static_cast<std::int32_t>(1 + rng.nextBelow(7)));
            kb.bra(13, skip);
            emit_alu_run(1 + rng.nextBelow(4));
            kb.label(skip);
            break;
          }
          case 2: { // divergent bounded loop: trips = (tid & 3) + 1
            const std::string top = "loop" + std::to_string(label_id++);
            kb.alui(Opcode::AND, 14, 4, 3);
            kb.alui(Opcode::IADD, 14, 14, 1);
            kb.label(top);
            emit_alu_run(1 + rng.nextBelow(3));
            kb.alui(Opcode::ISUB, 14, 14, 1);
            kb.setpi(Opcode::ISETP, CmpOp::GT, 15, 14, 0);
            kb.bra(15, top);
            break;
          }
          case 3: { // private shared round trip
            kb.alui(Opcode::SHL, 13, 4, 2); // tid * 4
            kb.sts(13, rand_work_reg());
            kb.lds(rand_work_reg(), 13);
            break;
          }
          case 4: { // extra data-dependent load
            kb.alui(Opcode::AND, 13, rand_work_reg(), kInWords - 1);
            kb.alui(Opcode::SHL, 13, 13, 2);
            kb.alu(Opcode::IADD, 13, 13, 0);
            kb.ldg(rand_work_reg(), 13);
            break;
          }
        }
    }

    // Epilogue: out[gid] = r8 ^ r9 ^ r10 ^ r11 ^ r12.
    kb.alu(Opcode::XOR, 8, 8, 9);
    kb.alu(Opcode::XOR, 8, 8, 10);
    kb.alu(Opcode::XOR, 8, 8, 11);
    kb.alu(Opcode::XOR, 8, 8, 12);
    kb.alui(Opcode::SHL, 13, 5, 2);
    kb.alu(Opcode::IADD, 13, 13, 1);
    kb.stg(13, 8);
    kb.exit();
    return kb.build();
}

/** Run @p kernel on @p cfg; return the full output buffer. */
std::vector<std::uint32_t>
runAndDump(const GpuConfig &cfg, const Kernel &kernel, std::uint64_t seed)
{
    Gpu gpu(cfg);
    Rng rng(seed * 7919 + 3);
    std::vector<std::uint32_t> in(kInWords);
    for (auto &v : in)
        v = static_cast<std::uint32_t>(rng.next());
    const Addr in_addr = gpu.memory().alloc(kInWords * 4);
    const Addr out_addr = gpu.memory().alloc(kOutWords * 4);
    gpu.memory().writeWords(in_addr, in);

    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(kOutWords / 64);
    lp.params = {std::uint32_t(in_addr), std::uint32_t(out_addr)};
    gpu.launch(kernel, lp);
    return gpu.memory().readWords(out_addr, kOutWords);
}

class RandomKernelProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomKernelProperty, AllMachineVariantsAgree)
{
    const std::uint64_t seed = GetParam();
    const Kernel kernel = randomKernel(seed);

    GpuConfig base = test::smallConfig();
    const auto reference = runAndDump(base, kernel, seed);

    std::map<std::string, GpuConfig> variants;
    {
        GpuConfig c = base;
        c.vtEnabled = true;
        variants["vt"] = c;
    }
    {
        GpuConfig c = base;
        c.vtEnabled = true;
        c.vtSwapTrigger = VtSwapTrigger::AnyWarpStalled;
        c.vtSwapInPolicy = VtSwapInPolicy::OldestFirst;
        c.vtStallThreshold = 0;
        variants["vt-aggressive"] = c;
    }
    {
        GpuConfig c = base;
        c.schedulerPolicy = SchedulerPolicy::LooseRoundRobin;
        variants["lrr"] = c;
    }
    {
        GpuConfig c = base;
        c.schedulerPolicy = SchedulerPolicy::TwoLevel;
        variants["two-level"] = c;
    }
    {
        GpuConfig c = base;
        c.numSms = 1;
        c.numMemPartitions = 1;
        variants["one-sm"] = c;
    }
    {
        GpuConfig c = base;
        c.schedLimitMultiplier = 4;
        variants["big-sched"] = c;
    }

    for (const auto &[name, cfg] : variants) {
        const auto got = runAndDump(cfg, kernel, seed);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], reference[i])
                << "variant " << name << " seed " << seed << " word " << i;
        }
    }
}

TEST_P(RandomKernelProperty, TimingIsDeterministic)
{
    const std::uint64_t seed = GetParam();
    const Kernel kernel = randomKernel(seed);
    GpuConfig cfg = test::smallConfig();
    cfg.vtEnabled = true;

    Gpu a(cfg), b(cfg);
    // Identical setup on both.
    auto prep = [&](Gpu &gpu) {
        Rng rng(seed);
        std::vector<std::uint32_t> in(kInWords);
        for (auto &v : in)
            v = static_cast<std::uint32_t>(rng.next());
        const Addr in_addr = gpu.memory().alloc(kInWords * 4);
        const Addr out_addr = gpu.memory().alloc(kOutWords * 4);
        gpu.memory().writeWords(in_addr, in);
        LaunchParams lp;
        lp.cta = Dim3(64);
        lp.grid = Dim3(kOutWords / 64);
        lp.params = {std::uint32_t(in_addr), std::uint32_t(out_addr)};
        return lp;
    };
    const auto lpa = prep(a);
    const auto lpb = prep(b);
    const auto sa = a.launch(kernel, lpa);
    const auto sb = b.launch(kernel, lpb);
    EXPECT_EQ(sa.cycles, sb.cycles);
    EXPECT_EQ(sa.swapOuts, sb.swapOuts);
    EXPECT_EQ(sa.warpInstructions, sb.warpInstructions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

} // namespace
} // namespace vtsim
