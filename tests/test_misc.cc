/**
 * @file
 * Remaining-coverage tests: WarpContext lifecycle, the storage-overhead
 * model, whole-machine stats dump, and config printing variants.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/overhead_model.hh"
#include "sm/warp_context.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

TEST(WarpContext, InitResetsEverything)
{
    WarpContext w;
    w.init(3, 1, ActiveMask::firstLanes(16), 8);
    EXPECT_EQ(w.vcta(), 3u);
    EXPECT_EQ(w.warpInCta(), 1u);
    EXPECT_EQ(w.liveLanes().count(), 16u);
    EXPECT_FALSE(w.done());
    EXPECT_FALSE(w.atBarrier());
    EXPECT_EQ(w.readyAt(), 0u);
    EXPECT_EQ(w.pendingOffChip(), 0u);
    EXPECT_EQ(w.issued(), 0u);

    w.setAtBarrier(true);
    w.setReadyAt(55);
    w.addOffChip();
    w.countIssue();
    w.init(4, 0, ActiveMask::all(), 8);
    EXPECT_FALSE(w.atBarrier());
    EXPECT_EQ(w.readyAt(), 0u);
    EXPECT_EQ(w.pendingOffChip(), 0u);
    EXPECT_EQ(w.issued(), 0u);
}

TEST(WarpContext, OffChipCounting)
{
    WarpContext w;
    w.init(0, 0, ActiveMask::all(), 4);
    w.addOffChip();
    w.addOffChip();
    EXPECT_EQ(w.pendingOffChip(), 2u);
    w.removeOffChip();
    EXPECT_EQ(w.pendingOffChip(), 1u);
}

TEST(WarpContextDeath, OffChipUnderflowPanics)
{
    WarpContext w;
    w.init(0, 0, ActiveMask::all(), 4);
    EXPECT_DEATH(w.removeOffChip(), "underflow");
}

TEST(OverheadModel, ScalesWithWarpsAndRegisters)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    const auto small = computeOverhead(cfg, 2, 16);
    const auto more_warps = computeOverhead(cfg, 8, 16);
    const auto more_regs = computeOverhead(cfg, 2, 64);
    EXPECT_GT(more_warps.bytesPerCtaContext, small.bytesPerCtaContext);
    EXPECT_GT(more_regs.bytesPerWarpContext, small.bytesPerWarpContext);
    // Warp count does not change the per-warp context size.
    EXPECT_EQ(more_warps.bytesPerWarpContext, small.bytesPerWarpContext);
}

TEST(OverheadModel, ExtraContextsBeyondSchedulingLimit)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    cfg.vtMaxVirtualCtasPerSm = 24;
    const auto o = computeOverhead(cfg, 2, 16);
    EXPECT_EQ(o.extraContextsPerSm, 24u - cfg.maxCtasPerSm);
    EXPECT_EQ(o.totalBytesPerSm,
              std::uint64_t(o.extraContextsPerSm) * o.bytesPerCtaContext);
}

TEST(OverheadModel, SwapMovesFarLessThanRegisterCopy)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    const auto o = computeOverhead(cfg, 4, 20);
    EXPECT_LT(o.bytesPerCtaContext, o.naiveSwapBytesPerCta / 10);
}

TEST(OverheadModel, PrintMentionsKeyRows)
{
    const auto o = computeOverhead(GpuConfig::fermiLike(), 2, 16);
    std::ostringstream os;
    printOverhead(os, o);
    const std::string out = os.str();
    EXPECT_NE(out.find("per warp context"), std::string::npos);
    EXPECT_NE(out.find("register file"), std::string::npos);
}

TEST(GpuStats, DumpContainsEveryComponentGroup)
{
    GpuConfig cfg = test::smallConfig();
    cfg.vtEnabled = true;
    Gpu gpu(cfg);
    const Kernel k = test::storeConstKernel();
    const Addr out = gpu.memory().alloc(256 * 4);
    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(4);
    lp.params = {std::uint32_t(out), 256, 1};
    gpu.launch(k, lp);

    std::ostringstream os;
    gpu.dumpStats(os);
    const std::string dump = os.str();
    for (const char *key :
         {"sm0.instructions", "sm1.instructions", "sm0.vt.swap_outs",
          "sm0.ldst.transactions", "sm0.l1d.hits", "l2_0.misses",
          "dram_0.row_misses", "noc.req_flits"}) {
        EXPECT_NE(dump.find(key), std::string::npos) << key;
    }
}

TEST(GpuConfig, PrintShowsWritePolicyAndThrottle)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    std::ostringstream os;
    cfg.print(os);
    EXPECT_NE(os.str().find("write-back"), std::string::npos);

    cfg.l2WriteBack = false;
    cfg.throttleEnabled = true;
    std::ostringstream os2;
    cfg.print(os2);
    EXPECT_NE(os2.str().find("write-through"), std::string::npos);
    EXPECT_NE(os2.str().find("throttling"), std::string::npos);
}

} // namespace
} // namespace vtsim
