file(REMOVE_RECURSE
  "../bench/fig2_resource_utilization"
  "../bench/fig2_resource_utilization.pdb"
  "CMakeFiles/fig2_resource_utilization.dir/fig2_resource_utilization.cc.o"
  "CMakeFiles/fig2_resource_utilization.dir/fig2_resource_utilization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_resource_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
