#!/usr/bin/env python3
"""Validate a vtsim --stats-json document against ci/stats_schema.json.

Standard library only (runs on a bare CI image). Implements exactly the
subset of JSON Schema the checked-in schema uses — type, const,
required, properties, items, and local '#/definitions/...' $refs — plus
two semantic checks the schema cannot express: the batch must contain
at least one run, and every run must have verified functional results.

Usage: validate_stats_json.py <stats.json> [schema.json]
Exit status 0 when valid; 1 with one line per violation otherwise.
"""

import json
import pathlib
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
}


def _type_ok(value, expected):
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    cls = _TYPES[expected]
    if cls is dict or cls is list or cls is str:
        return isinstance(value, cls)
    return isinstance(value, bool)


def validate(value, schema, path, errors, root=None):
    if root is None:
        root = schema
    if "$ref" in schema:
        ref = schema["$ref"]
        prefix = "#/definitions/"
        if not ref.startswith(prefix):
            raise ValueError(f"unsupported $ref {ref!r} (only local "
                             "'#/definitions/...' refs are implemented)")
        schema = root["definitions"][ref[len(prefix):]]
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    expected = schema.get("type")
    if expected is not None and not _type_ok(value, expected):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    for key in schema.get("required", []):
        if key not in value:
            errors.append(f"{path}: missing required key '{key}'")
    if "properties" in schema:
        for key, sub in schema["properties"].items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors, root)
    if "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors, root)


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print("usage: validate_stats_json.py <stats.json> [schema.json]",
              file=sys.stderr)
        return 2
    stats_path = pathlib.Path(argv[1])
    schema_path = (
        pathlib.Path(argv[2])
        if len(argv) == 3
        else pathlib.Path(__file__).resolve().parent.parent
        / "ci" / "stats_schema.json"
    )
    document = json.loads(stats_path.read_text())
    schema = json.loads(schema_path.read_text())

    errors = []
    validate(document, schema, "$", errors)
    runs = document.get("runs")
    fabric = document.get("fabric")
    if isinstance(runs, list):
        if not runs and not isinstance(fabric, dict):
            # A coordinator document legitimately has no runs of its
            # own: per-run results live in the daemons' documents.
            errors.append("$.runs: batch contains no runs")
        for i, run in enumerate(runs):
            if isinstance(run, dict) and run.get("verified") is not True:
                errors.append(f"$.runs[{i}]: run is not verified")

    service = document.get("service")
    if isinstance(service, dict):
        # A vtsimd document is written after a draining shutdown: every
        # completed job has a run entry and nothing is still in flight.
        jobs = service.get("jobs", {})
        if isinstance(runs, list) and jobs.get("completed") != len(runs):
            errors.append(
                f"$.service.jobs.completed: {jobs.get('completed')} "
                f"completed jobs but {len(runs)} run entries"
            )
        for key in ("running", "parked"):
            if jobs.get(key, 0) != 0:
                errors.append(
                    f"$.service.jobs.{key}: {jobs.get(key)} jobs still "
                    "in flight after shutdown"
                )

    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        return 1
    summary = f"{stats_path}: valid {document['schema']}, " \
              f"{len(runs)} verified runs"
    if isinstance(fabric, dict):
        summary += (
            f", fabric: {fabric['jobs']['completed']} completed / "
            f"{fabric['steals']} steals / "
            f"{fabric['migrations']} migrations"
        )
    if isinstance(service, dict):
        summary += (
            f", service: {service['jobs']['submitted']} submitted / "
            f"{service['preemptions']} preemptions / "
            f"{service['retries']} retries"
        )
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
