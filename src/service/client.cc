#include "service/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <stdexcept>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

namespace vtsim::service {

Client::Client(const std::string &socket_path)
    : fd_(fabric::connectUnix(socket_path))
{}

Client::Client(const fabric::HostPort &addr, std::string token,
               int connect_timeout_ms, int io_timeout_ms)
    : fd_(fabric::connectTcp(addr, connect_timeout_ms, io_timeout_ms)),
      token_(std::move(token))
{}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Json
Client::request(const Json &request)
{
    std::string line;
    if (!token_.empty() && request.isObject()) {
        Json::Object o = request.asObject();
        o["token"] = Json(token_);
        line = Json(std::move(o)).dump();
    } else {
        line = request.dump();
    }
    const std::string reply = requestRaw(line);
    if (reply.empty())
        throw std::runtime_error("vtsimd closed the connection");
    return Json::parse(reply);
}

std::string
Client::requestRaw(const std::string &line)
{
    if (!fabric::sendLine(fd_, line))
        throw std::runtime_error("send to vtsimd failed");
    return readLine();
}

void
Client::sendPartialAndClose(const std::string &data)
{
    if (!data.empty())
        (void)::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    ::close(fd_);
    fd_ = -1;
}

std::string
Client::readLine()
{
    char chunk[4096];
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            throw fabric::TransportError("reply read timed out");
        if (n <= 0)
            return std::string(); // Daemon hung up.
        buffer_.append(chunk, std::size_t(n));
    }
}

std::unique_ptr<Client>
connectTcpWithRetry(const fabric::HostPort &addr,
                    const std::string &token,
                    const RetryPolicy &policy, int connect_timeout_ms,
                    int io_timeout_ms)
{
    std::mt19937 rng{std::random_device{}()};
    int delay = policy.baseDelayMs;
    for (int attempt = 1;; ++attempt) {
        try {
            return std::make_unique<Client>(addr, token,
                                            connect_timeout_ms,
                                            io_timeout_ms);
        } catch (const fabric::TransportError &) {
            if (attempt >= policy.attempts)
                throw;
        }
        // Full jitter on a doubling, capped delay: concurrent clients
        // hitting a restarting daemon spread out instead of stampeding
        // it in lockstep.
        std::uniform_int_distribution<int> jitter(delay / 2, delay);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(jitter(rng)));
        delay = std::min(delay * 2, policy.maxDelayMs);
    }
}

} // namespace vtsim::service
