/**
 * @file
 * The shared NDJSON line server of the vtsim fabric: one accept loop
 * over any mix of Unix-domain and TCP listeners, one thread per
 * connection, newline framing with the protocol's 64 KiB request-line
 * cap, and optional bearer-token authentication — everything the
 * vtsimd daemon and the vtsim-coord coordinator have in common, with
 * the per-op dispatch left to a handler callback.
 *
 * Robustness contract (inherited from the original Unix-socket
 * daemon): nothing a client sends may take the server down. Malformed
 * lines are the handler's problem to answer; oversized lines are
 * rejected here without parsing and the connection closed (the stream
 * can no longer be trusted to be line-synchronized); a wrong or
 * missing bearer token on an authenticated server draws one
 * "unauthorized" error reply and a close, before any handler runs.
 *
 * The accept loop treats EINTR, ECONNABORTED and file-descriptor
 * exhaustion (EMFILE/ENFILE) as transient: logged, a brief sleep for
 * the fd-pressure cases so a busy loop cannot starve the process, and
 * the loop keeps serving. Only unexpected accept errors stop it.
 */

#ifndef VTSIM_FABRIC_LINE_SERVER_HH
#define VTSIM_FABRIC_LINE_SERVER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fabric/transport.hh"

namespace vtsim::fabric {

struct LineServerConfig
{
    /** Unix-domain listener path; empty = no Unix listener. */
    std::string unixPath;
    /** TCP listener; enabled when tcpEnabled. Port 0 binds an
     *  ephemeral port (boundTcpPort() reads it back). */
    HostPort tcp;
    bool tcpEnabled = false;
    /**
     * Bearer token: when non-empty, every request line must be a JSON
     * object carrying "token" equal to it. Applies to both listeners —
     * a fabric daemon moves checkpoint images, so its Unix socket is
     * not implicitly trusted either.
     */
    std::string authToken;
    /** Log tag ("vtsimd", "vtsim-coord"). */
    std::string name = "line-server";
};

class LineServer
{
  public:
    /** Longest accepted request line; longer ones are rejected
     *  without parsing. */
    static constexpr std::size_t kMaxLineBytes = 64 * 1024;

    /**
     * Handle one authenticated request line; reply with sendLine(fd,
     * ...). Return false to close the connection (shutdown ops,
     * unrecoverable framing). Called from connection threads
     * concurrently — the handler synchronizes itself.
     */
    using Handler = std::function<bool(int fd, const std::string &line)>;

    /** Called on non-transient accept errors (evlog hook); may be
     *  empty. */
    using ErrorHook = std::function<void(const std::string &error)>;

    LineServer(LineServerConfig config, Handler handler);

    /** Stops accepting and joins connection threads. */
    ~LineServer();

    /** Bind every configured listener. Throws TransportError. */
    void start();

    /**
     * Accept-and-serve until requestStop(). Joins the connection
     * threads before returning, so replies in flight finish.
     */
    void serve();

    /** Ask serve() to return. Safe from signal handlers and
     *  connection threads. */
    void requestStop();

    /** After start(): the TCP port actually bound (ephemeral
     *  resolution), 0 when no TCP listener. */
    std::uint16_t boundTcpPort() const { return tcpPort_; }

    const std::string &unixPath() const { return config_.unixPath; }

    void setErrorHook(ErrorHook hook) { errorHook_ = std::move(hook); }

  private:
    void serveConnection(int fd);
    /** Join (and forget) every connection thread spawned so far. */
    void serveJoin();
    /** Token check + line-cap enforcement, then the handler. */
    bool dispatchLine(int fd, const std::string &line);

    LineServerConfig config_;
    Handler handler_;
    ErrorHook errorHook_;
    std::vector<int> listenFds_;
    std::uint16_t tcpPort_ = 0;
    std::atomic<bool> stop_{false};
    std::mutex connMu_;
    std::vector<std::thread> connections_;
    /** Open connection sockets: shut down at join time so threads
     *  blocked in recv() on long-lived sessions unblock. */
    std::set<int> connFds_;
};

} // namespace vtsim::fabric

#endif // VTSIM_FABRIC_LINE_SERVER_HH
