# Empty dependencies file for vtsim.
# This may be replaced when dependencies are built.
