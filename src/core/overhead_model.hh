/**
 * @file
 * Analytical model of the Virtual Thread hardware storage overhead: the
 * bytes of scheduling state the architecture must keep per virtual CTA
 * context beyond the baseline (TAB-3). The paper's key saving — not
 * copying registers or shared memory — appears here as the absence of
 * those terms from the per-context cost.
 */

#ifndef VTSIM_CORE_OVERHEAD_MODEL_HH
#define VTSIM_CORE_OVERHEAD_MODEL_HH

#include <cstdint>
#include <ostream>

#include "config/gpu_config.hh"

namespace vtsim {

/** Storage bill for one configuration. */
struct VtOverhead
{
    std::uint32_t bytesPerWarpContext = 0; ///< PC+SIMT stack+scoreboard+...
    std::uint32_t bytesPerCtaContext = 0;  ///< warpsPerCta contexts + CTA.
    std::uint32_t extraContextsPerSm = 0;  ///< Beyond the scheduling limit.
    std::uint64_t totalBytesPerSm = 0;
    std::uint64_t registerFileBytesPerSm = 0; ///< For scale comparison.
    /** Bytes a naive (register-copying) context switch would move. */
    std::uint64_t naiveSwapBytesPerCta = 0;
};

/**
 * Compute the storage overhead of supporting the configured number of
 * virtual CTA contexts.
 *
 * @param config The machine.
 * @param warps_per_cta Warps per CTA of the kernel of interest.
 * @param regs_per_thread Registers per thread of that kernel.
 * @param simt_stack_depth Provisioned SIMT stack entries per warp.
 */
VtOverhead computeOverhead(const GpuConfig &config,
                           std::uint32_t warps_per_cta,
                           std::uint32_t regs_per_thread,
                           std::uint32_t simt_stack_depth = 16);

/** Pretty-print as the TAB-3 rows. */
void printOverhead(std::ostream &os, const VtOverhead &overhead);

} // namespace vtsim

#endif // VTSIM_CORE_OVERHEAD_MODEL_HH
