/**
 * @file
 * Unit tests for GpuConfig: presets, validation, printing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hh"
#include "config/gpu_config.hh"
#include "config/sim_mode.hh"

namespace vtsim {
namespace {

TEST(GpuConfig, PresetsValidate)
{
    EXPECT_NO_THROW(GpuConfig::fermiLike().validate());
    EXPECT_NO_THROW(GpuConfig::keplerLike().validate());
    EXPECT_NO_THROW(GpuConfig::testMini().validate());
}

TEST(GpuConfig, FermiShape)
{
    const GpuConfig cfg = GpuConfig::fermiLike();
    EXPECT_EQ(cfg.numSms, 15u);
    EXPECT_EQ(cfg.maxWarpsPerSm, 48u);
    EXPECT_EQ(cfg.maxCtasPerSm, 8u);
    EXPECT_EQ(cfg.maxThreadsPerSm, 1536u);
    EXPECT_EQ(cfg.registersPerSm, 32768u);
    EXPECT_EQ(cfg.sharedMemPerSm, 48u * 1024);
    EXPECT_FALSE(cfg.vtEnabled);
}

TEST(GpuConfig, KeplerIsBigger)
{
    const GpuConfig f = GpuConfig::fermiLike();
    const GpuConfig k = GpuConfig::keplerLike();
    EXPECT_GT(k.maxWarpsPerSm, f.maxWarpsPerSm);
    EXPECT_GT(k.maxCtasPerSm, f.maxCtasPerSm);
    EXPECT_GT(k.registersPerSm, f.registersPerSm);
}

TEST(GpuConfig, EffectiveLimitsScaleWithMultiplier)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.schedLimitMultiplier = 2;
    EXPECT_EQ(cfg.effMaxWarpsPerSm(), 96u);
    EXPECT_EQ(cfg.effMaxCtasPerSm(), 16u);
    EXPECT_EQ(cfg.effMaxThreadsPerSm(), 3072u);
}

TEST(GpuConfig, RejectsZeroSms)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.numSms = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsMismatchedLineSizes)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.l2LineSize = 64;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsNonPow2LineSize)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.l1LineSize = 100;
    cfg.l2LineSize = 100;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsIndivisibleCacheShape)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.l1Size = 1000;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsNonPow2SharedBanks)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.sharedMemBanks = 12;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsVtBudgetBelowSchedulingLimit)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    cfg.vtMaxVirtualCtasPerSm = 4; // < maxCtasPerSm = 8
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsVtPlusMultiplier)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    cfg.schedLimitMultiplier = 2;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsZeroMultiplier)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.schedLimitMultiplier = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, VtBudgetZeroMeansCapacityBound)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    cfg.vtMaxVirtualCtasPerSm = 0;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(GpuConfig, PrintMentionsKeyParameters)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    std::ostringstream os;
    cfg.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("SMs"), std::string::npos);
    EXPECT_NE(out.find("48"), std::string::npos);
    EXPECT_NE(out.find("Virtual Thread"), std::string::npos);
    EXPECT_NE(out.find("ENABLED"), std::string::npos);
    EXPECT_NE(out.find("swap"), std::string::npos);
}

TEST(GpuConfig, PolicyNames)
{
    EXPECT_EQ(toString(SchedulerPolicy::LooseRoundRobin), "lrr");
    EXPECT_EQ(toString(SchedulerPolicy::GreedyThenOldest), "gto");
    EXPECT_EQ(toString(SchedulerPolicy::TwoLevel), "two-level");
    EXPECT_EQ(toString(VtSwapTrigger::AllWarpsStalled),
              "all-warps-stalled");
    EXPECT_EQ(toString(VtSwapTrigger::AnyWarpStalled), "any-warp-stalled");
    EXPECT_EQ(toString(VtSwapInPolicy::ReadyFirst), "ready-first");
    EXPECT_EQ(toString(VtSwapInPolicy::OldestFirst), "oldest-first");
}

TEST(SimMode, MatrixAcceptsValidCombinations)
{
    EXPECT_TRUE(validateSimMode({}).empty());

    SimModeSpec replay_resume; // Replay checkpoints resume in replay.
    replay_resume.replayTrace = true;
    replay_resume.restore = true;
    EXPECT_TRUE(validateSimMode(replay_resume).empty());

    SimModeSpec corun_ckpt; // Co-runs checkpoint and preempt freely.
    corun_ckpt.numGrids = 3;
    corun_ckpt.checkpointEvery = 1000;
    corun_ckpt.restore = true;
    EXPECT_TRUE(validateSimMode(corun_ckpt).empty());

    SimModeSpec preempt_vt;
    preempt_vt.numGrids = 2;
    preempt_vt.preemptPolicy = true;
    preempt_vt.vtEnabled = true;
    EXPECT_TRUE(validateSimMode(preempt_vt).empty());

    // Preempt policy with one grid degenerates to a solo run; no VT
    // machine is needed because nothing ever preempts.
    SimModeSpec solo_preempt;
    solo_preempt.preemptPolicy = true;
    EXPECT_TRUE(validateSimMode(solo_preempt).empty());
}

TEST(SimMode, MatrixRejectsInvalidCombinations)
{
    SimModeSpec record_replay;
    record_replay.recordTrace = true;
    record_replay.replayTrace = true;
    EXPECT_FALSE(validateSimMode(record_replay).empty());
    EXPECT_THROW(requireValidSimMode(record_replay), FatalError);

    SimModeSpec record_corun;
    record_corun.recordTrace = true;
    record_corun.numGrids = 2;
    EXPECT_FALSE(validateSimMode(record_corun).empty());

    SimModeSpec record_ckpt;
    record_ckpt.recordTrace = true;
    record_ckpt.checkpointEvery = 500;
    EXPECT_FALSE(validateSimMode(record_ckpt).empty());

    SimModeSpec record_restore;
    record_restore.recordTrace = true;
    record_restore.restore = true;
    EXPECT_FALSE(validateSimMode(record_restore).empty());

    SimModeSpec replay_corun;
    replay_corun.replayTrace = true;
    replay_corun.numGrids = 2;
    EXPECT_FALSE(validateSimMode(replay_corun).empty());

    SimModeSpec preempt_no_vt;
    preempt_no_vt.numGrids = 2;
    preempt_no_vt.preemptPolicy = true;
    EXPECT_FALSE(validateSimMode(preempt_no_vt).empty());
}

} // namespace
} // namespace vtsim
