#include "sm/scoreboard.hh"

#include "common/log.hh"

namespace vtsim {

void
Scoreboard::reset(std::uint32_t num_regs)
{
    pending_.assign(num_regs, 0);
    pendingLong_.assign(num_regs, 0);
    pendingCount_ = 0;
    pendingLongCount_ = 0;
}

void
Scoreboard::reserve(RegIndex reg, bool long_latency)
{
    VTSIM_ASSERT(reg < pending_.size(), "scoreboard reserve out of range");
    VTSIM_ASSERT(!pending_[reg], "double reserve of r", reg);
    pending_[reg] = 1;
    ++pendingCount_;
    if (long_latency) {
        pendingLong_[reg] = 1;
        ++pendingLongCount_;
    }
}

void
Scoreboard::release(RegIndex reg)
{
    VTSIM_ASSERT(reg < pending_.size(), "scoreboard release out of range");
    VTSIM_ASSERT(pending_[reg], "release of idle r", reg);
    pending_[reg] = 0;
    --pendingCount_;
    if (pendingLong_[reg]) {
        pendingLong_[reg] = 0;
        --pendingLongCount_;
    }
}

} // namespace vtsim
