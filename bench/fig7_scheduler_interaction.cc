/**
 * @file
 * FIG-7: interaction with the warp scheduling policy. VT is orthogonal
 * to the intra-SM warp scheduler; its gain should persist under LRR,
 * GTO and two-level scheduling.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-7", "VT speedup under different warp schedulers");
    const SchedulerPolicy policies[] = {
        SchedulerPolicy::LooseRoundRobin,
        SchedulerPolicy::GreedyThenOldest,
        SchedulerPolicy::TwoLevel,
    };
    const char *subset[] = {"vecadd", "saxpy", "reduce", "stencil",
                            "histogram", "bfs"};

    std::printf("%-14s", "benchmark");
    for (auto p : policies)
        std::printf(" %10s", toString(p).c_str());
    std::printf("\n");

    for (const char *name : subset) {
        std::printf("%-14s", name);
        for (auto policy : policies) {
            GpuConfig base = GpuConfig::fermiLike();
            base.schedulerPolicy = policy;
            GpuConfig vt = base;
            vt.vtEnabled = true;
            const RunResult b = runWorkload(name, base, benchScale);
            const RunResult v = runWorkload(name, vt, benchScale);
            std::printf("     %5.2fx",
                        double(b.stats.cycles) / v.stats.cycles);
        }
        std::printf("\n");
    }
    std::printf("(each column's baseline uses the same scheduler as its "
                "VT machine)\n");
    return 0;
}
