/**
 * @file
 * EXT-1 (extension study): interaction of Virtual Thread with an
 * L1-bypass policy for global loads (the Kepler default, and what
 * PTX ldg.cg requests per-instruction). Oversubscribing CTAs raises L1
 * pressure; routing streaming loads around the L1 removes that
 * contention channel. Reported: speedup of each machine over the
 * shared baseline (L1 enabled, VT off).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("EXT-1", "VT x L1-bypass interaction");
    const GpuConfig base = GpuConfig::fermiLike();

    std::printf("%-14s %10s %10s %10s\n", "benchmark", "vt",
                "bypass", "vt+bypass");
    const char *subset[] = {"vecadd", "spmv", "stencil", "kmeans",
                            "needle", "mummer"};
    for (const char *name : subset) {
        const RunResult ref = runWorkload(name, base, benchScale);

        GpuConfig vt = base;
        vt.vtEnabled = true;
        GpuConfig byp = base;
        byp.l1BypassGlobalLoads = true;
        GpuConfig both = vt;
        both.l1BypassGlobalLoads = true;

        const double sv = double(ref.stats.cycles) /
                          runWorkload(name, vt, benchScale).stats.cycles;
        const double sb = double(ref.stats.cycles) /
                          runWorkload(name, byp, benchScale).stats.cycles;
        const double s2 = double(ref.stats.cycles) /
                          runWorkload(name, both, benchScale).stats.cycles;
        std::printf("%-14s %9.2fx %9.2fx %9.2fx\n", name, sv, sb, s2);
    }
    std::printf("(all columns normalised to the L1-enabled, VT-off "
                "baseline)\n");
    return 0;
}
