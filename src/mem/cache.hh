/**
 * @file
 * Set-associative, LRU, write-through/no-write-allocate cache with an MSHR
 * table — the structure used for both the per-SM L1D and the per-partition
 * L2 slice. The cache is a passive tag/miss-tracking structure; timing is
 * orchestrated by its owner (LdstUnit or MemoryPartition).
 */

#ifndef VTSIM_MEM_CACHE_HH
#define VTSIM_MEM_CACHE_HH

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/mem_request.hh"
#include "sim/sim_component.hh"
#include "stats/stats.hh"

namespace vtsim {

/** Cache geometry and miss-handling resources. */
struct CacheParams
{
    std::string name = "cache";
    std::uint32_t size = 16 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t lineSize = 128;
    std::uint32_t numMshrs = 32;
    std::uint32_t mshrTargets = 8;
};

/** Result of presenting a (load-like) request to the cache. */
enum class CacheOutcome
{
    Hit,            ///< Line present.
    MissNew,        ///< New MSHR allocated: caller must fetch the line.
    MissMerged,     ///< Folded into an in-flight miss; no fetch needed.
    RejectMshrFull, ///< No MSHR free: caller must retry later.
    RejectTargets,  ///< MSHR exists but its target list is full: retry.
};

/**
 * One outstanding miss: the line being fetched plus every request that
 * wants it.
 */
struct MshrEntry
{
    Addr lineAddr = 0;
    std::vector<MemRequest> targets;
};

/** Outcome of installing a line (fill or write-allocate). */
struct FillResult
{
    /** Requests parked on the line's MSHR (empty for write-allocate). */
    std::vector<MemRequest> targets;
    /** A dirty victim was evicted and must be written back. */
    bool evictedDirty = false;
    Addr evictedLine = 0;
};

class Cache : public SimComponent
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Present a load/atomic request. On MissNew the caller owns fetching
     * the line and must eventually call fill(); on Hit or MissMerged the
     * request is either complete or parked in the MSHR.
     */
    CacheOutcome access(const MemRequest &req);

    /**
     * Write-through store lookup: touches LRU on hit, never allocates.
     * @return true on hit.
     */
    bool storeAccess(Addr line_addr);

    /**
     * Write-back, write-allocate (no-fetch) store: marks the line dirty,
     * allocating it without a memory fetch on a miss (GPU stores are
     * full-line coalesced; the data lives in the functional memory).
     * The caller must write back the evicted dirty victim, if any.
     */
    FillResult storeAllocate(Addr line_addr);

    /** Probe without side effects. */
    bool probe(Addr line_addr) const;

    /**
     * The fetched line arrived: insert it (evicting LRU if needed) and
     * return every parked request waiting on it (first is the miss
     * initiator), plus any dirty victim needing writeback.
     */
    FillResult fill(Addr line_addr);

    /** True when the line is present and dirty. */
    bool probeDirty(Addr line_addr) const;

    /** Invalidate everything (kernel boundary). MSHRs must be idle. */
    void flush();

    std::uint32_t mshrsInUse() const { return mshrs_.size(); }
    std::uint32_t numSets() const { return numSets_; }
    const CacheParams &params() const { return params_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &statGroup() const { return stats_; }

    // Raw stat accessors used by benches.
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Per-grid load hit/miss split (concurrent launches). The aggregate
     *  hits()/misses() counters are unchanged by the split: both are
     *  bumped on every access, so solo-run numbers stay identical. */
    std::uint64_t gridHits(GridId g) const
    { return gridHits_.at(g).value(); }
    std::uint64_t gridMisses(GridId g) const
    { return gridMisses_.at(g).value(); }

    // SimComponent lifecycle (a cache is passive: no tick/next-event).
    void reset() override;
    void save(Serializer &ser) const override;
    void restore(Deserializer &des) override;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0; ///< LRU timestamp.
    };

    std::uint32_t setIndex(Addr line_addr) const;
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;
    /** Insert @p line_addr; reports a dirty victim through @p result. */
    Line *insertLine(Addr line_addr, FillResult &result);

    CacheParams params_;
    std::uint32_t numSets_;
    std::vector<Line> lines_; ///< numSets_ * assoc, set-major.
    /**
     * Per-set most-recently-hit way. Pure lookup accelerator: findLine
     * probes this way first before sweeping the set, exploiting the
     * temporal locality of coalesced warp accesses. Never affects
     * replacement or stats, so it is mutable for the const probe path.
     */
    mutable std::vector<std::uint32_t> mruWay_;
    std::unordered_map<Addr, MshrEntry> mshrs_;
    std::uint64_t useClock_ = 0;

    StatGroup stats_;
    Counter hits_;
    Counter misses_;
    Counter mshrMerges_;
    Counter mshrRejects_;
    Counter evictions_;
    Counter dirtyEvictions_;
    Counter storeHits_;
    Counter storeMisses_;
    /** Load hits/misses attributed to the issuing grid (MemRequest::grid).
     *  A line brought in by one grid and hit by another counts the hit
     *  for the hitting grid — invalidate-between-kernels is no longer a
     *  usable attribution boundary once kernels co-run. */
    std::array<Counter, maxGrids> gridHits_;
    std::array<Counter, maxGrids> gridMisses_;
};

} // namespace vtsim

#endif // VTSIM_MEM_CACHE_HH
