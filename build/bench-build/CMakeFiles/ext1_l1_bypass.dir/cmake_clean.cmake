file(REMOVE_RECURSE
  "../bench/ext1_l1_bypass"
  "../bench/ext1_l1_bypass.pdb"
  "CMakeFiles/ext1_l1_bypass.dir/ext1_l1_bypass.cc.o"
  "CMakeFiles/ext1_l1_bypass.dir/ext1_l1_bypass.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext1_l1_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
