/**
 * @file
 * Job model of the vtsim simulation-job service: what a client submits
 * (JobSpec), how far it has gotten (JobState), and what the service
 * reports back (JobSnapshot).
 *
 * A job is one workload simulation — the same unit bench_common's
 * runWorkload runs in-process — lifted into a queued, prioritized,
 * preemptible service request. Jobs beyond the worker count stay
 * admitted with their bulky state parked on disk as a vtsim-ckpt-v1
 * image and only the cheap scheduling context (this record) resident,
 * mirroring the paper's virtual-thread trick at the service level.
 */

#ifndef VTSIM_SERVICE_JOB_HH
#define VTSIM_SERVICE_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "gpu/gpu.hh"

namespace vtsim::service {

using JobId = std::uint64_t;

/** Scheduling class; higher runs first and may preempt lower. */
enum class Priority : std::uint8_t { Low = 0, Normal = 1, High = 2 };

std::string toString(Priority p);

/** What to simulate — the submit request's payload. */
struct JobSpec
{
    std::string workload;
    std::uint32_t scale = 1;
    GpuConfig config = GpuConfig::fermiLike();
    /** Interval-sampler cadence (0 = no interval series). */
    Cycle statsInterval = 0;
    /**
     * Preemption/checkpoint cadence in cycles; 0 takes the service
     * default. Preemption, crash recovery and parking all happen at
     * these boundaries only.
     */
    Cycle checkpointEvery = 0;
    /**
     * Test hook: the first @p injectFail attempts of this job throw a
     * deliberate failure at their first cadence boundary (after a
     * checkpoint image was parked, when the cadence allows one), to
     * exercise the retry-from-checkpoint path deterministically.
     */
    std::uint32_t injectFail = 0;
    /**
     * Shard this job's simulation across this many worker threads
     * (docs/ARCHITECTURE.md "Sharded simulation"); 0 and 1 both mean
     * sequential. Results, series and parked checkpoint images are
     * bit-identical either way — a preempted sharded job may resume
     * sequentially and vice versa. Bounded at submit by the service's
     * maxSimThreads; larger requests are rejected, not clamped.
     */
    unsigned simThreads = 0;
    /**
     * Write a vtsim-mtrace-v1 memory-access trace of this job's run to
     * this path (empty = no trace). A recording job opts out of the
     * preemption/checkpoint cadence (recording does not compose with
     * mid-run checkpoints) and always simulates sequentially.
     */
    std::string recordTrace;
    /**
     * Co-resident workloads of a concurrent job: grid g runs
     * kernels[g] (submit's `kernels: [...]`). Empty = the classic
     * single-kernel job running `workload`; when set, `workload`
     * mirrors kernels[0] for display. Bounded by maxGrids; recording
     * does not compose with co-runs (config/sim_mode.hh).
     */
    std::vector<std::string> kernels;
    /** CTA-slot sharing policy of a multi-kernel job (`share_policy`). */
    SharePolicy sharePolicy = SharePolicy::VtFill;
    /**
     * Path of a vtsim-ckpt-v1 image this job resumes from at its first
     * start (empty = run from scratch). This is how a migrated job
     * lands: the coordinator stages the image shipped from the source
     * daemon into the spool directory and submits with this set. The
     * byte-portable image format makes the resumed run bit-identical
     * to finishing on the source daemon. Does not compose with
     * recordTrace (a restore point is mid-run; recording is not).
     */
    std::string resumeFrom;

    /** The resolved grid list: kernels, or {workload} when empty. */
    std::vector<std::string>
    gridWorkloads() const
    {
        return kernels.empty() ? std::vector<std::string>{workload}
                               : kernels;
    }
};

enum class JobState : std::uint8_t
{
    Queued,   ///< Admitted, waiting for a worker.
    Running,  ///< On a worker right now.
    Parked,   ///< Preempted; state on disk, waiting to resume.
    Done,      ///< Completed with verified results.
    Failed,    ///< Exhausted its retry; see failureReason.
    Cancelled, ///< Removed from the queue before running to completion.
    /**
     * Yanked by the coordinator for execution on another daemon (work
     * steal or checkpoint migration). Terminal *here*: this daemon is
     * done with the job; its checkpoint image (when parked) stays on
     * disk until the coordinator has shipped it and sends "release".
     */
    Migrated
};

std::string toString(JobState s);

/** Point-in-time view of a job, returned by wait/query. */
struct JobSnapshot
{
    JobId id = 0;
    JobState state = JobState::Queued;
    Priority priority = Priority::Normal;
    std::string workload;
    std::uint32_t scale = 1;
    /** Effective shard-thread request (JobSpec::simThreads). */
    unsigned simThreads = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t retries = 0;
    /** Seconds between admission and first start. */
    double waitSeconds = 0.0;
    /** Host seconds on a worker, summed over slices. */
    double wallSeconds = 0.0;
    std::string failureReason;

    // Valid when state == Done.
    KernelStats stats;
    bool verified = false;
    std::uint32_t maxSimtDepth = 0;
    std::string intervalSeries;
    /** Per-grid results of a multi-kernel job (Gpu::gridStats). */
    std::vector<GridStats> grids;

    bool
    terminal() const
    {
        return state == JobState::Done || state == JobState::Failed ||
               state == JobState::Cancelled ||
               state == JobState::Migrated;
    }
};

} // namespace vtsim::service

#endif // VTSIM_SERVICE_JOB_HH
