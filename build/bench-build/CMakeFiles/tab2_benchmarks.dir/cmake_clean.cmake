file(REMOVE_RECURSE
  "../bench/tab2_benchmarks"
  "../bench/tab2_benchmarks.pdb"
  "CMakeFiles/tab2_benchmarks.dir/tab2_benchmarks.cc.o"
  "CMakeFiles/tab2_benchmarks.dir/tab2_benchmarks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
