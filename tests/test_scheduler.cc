/**
 * @file
 * Unit tests for the warp scheduling policies.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hh"
#include "sm/warp_scheduler.hh"

namespace vtsim {
namespace {

std::vector<WarpCandidate>
cands(std::initializer_list<std::uint64_t> keys)
{
    std::vector<WarpCandidate> out;
    for (auto k : keys)
        out.push_back({k, k});
    return out;
}

TEST(Lrr, RotatesThroughCandidates)
{
    LrrScheduler s;
    const auto c = cands({10, 20, 30});
    EXPECT_EQ(c[s.pick(c)].key, 10u);
    EXPECT_EQ(c[s.pick(c)].key, 20u);
    EXPECT_EQ(c[s.pick(c)].key, 30u);
    EXPECT_EQ(c[s.pick(c)].key, 10u); // wraps
}

TEST(Lrr, SkipsMissingCandidates)
{
    LrrScheduler s;
    const auto first = cands({10, 20, 30});
    EXPECT_EQ(first[s.pick(first)].key, 10u);
    // 20 unavailable next cycle: goes to 30.
    const auto c = cands({10, 30});
    EXPECT_EQ(c[s.pick(c)].key, 30u);
}

TEST(Gto, StaysGreedyWhileAvailable)
{
    GtoScheduler s;
    const auto c = cands({5, 7, 9});
    const auto first = c[s.pick(c)].key;
    EXPECT_EQ(first, 5u); // oldest
    EXPECT_EQ(c[s.pick(c)].key, 5u);
    EXPECT_EQ(c[s.pick(c)].key, 5u);
}

TEST(Gto, FallsBackToOldestWhenGreedyStalls)
{
    GtoScheduler s;
    s.pick(cands({5, 7, 9})); // greedy = 5
    const auto c = cands({9, 7}); // 5 stalled
    EXPECT_EQ(c[s.pick(c)].key, 7u); // oldest available
    // And stays greedy on 7 afterwards.
    const auto c2 = cands({9, 7, 5});
    EXPECT_EQ(c2[s.pick(c2)].key, 7u);
}

TEST(TwoLevel, PrefersActiveSetMembers)
{
    TwoLevelScheduler s(2);
    // First pick promotes the oldest into the active set.
    auto c = cands({1, 2, 3, 4});
    EXPECT_EQ(c[s.pick(c)].key, 1u);
    // 1 still ready: stays inside the active set.
    EXPECT_EQ(c[s.pick(c)].key, 1u);
    // 1 stalls: promote 2.
    auto c2 = cands({2, 3, 4});
    EXPECT_EQ(c2[s.pick(c2)].key, 2u);
    // Both 1 and 2 in the set now; LRR between them.
    auto c3 = cands({1, 2, 3, 4});
    const auto k1 = c3[s.pick(c3)].key;
    const auto k2 = c3[s.pick(c3)].key;
    EXPECT_NE(k1, k2);
    EXPECT_TRUE((k1 == 1 || k1 == 2) && (k2 == 1 || k2 == 2));
}

TEST(Factory, CreatesEachPolicy)
{
    for (auto policy : {SchedulerPolicy::LooseRoundRobin,
                        SchedulerPolicy::GreedyThenOldest,
                        SchedulerPolicy::TwoLevel}) {
        auto s = WarpScheduler::create(policy, 4);
        ASSERT_NE(s, nullptr);
        const auto c = cands({3, 1, 2});
        const auto idx = s->pick(c);
        EXPECT_LT(idx, c.size());
    }
}

/** Property: every policy always returns a valid index and, over enough
 *  rounds with all warps ready, eventually schedules every warp. */
class PolicyProperty : public ::testing::TestWithParam<SchedulerPolicy> {};

TEST_P(PolicyProperty, ValidIndexOnRandomCandidateSets)
{
    auto s = WarpScheduler::create(GetParam(), 4);
    Rng rng(99);
    for (int round = 0; round < 500; ++round) {
        std::vector<WarpCandidate> c;
        const int n = 1 + rng.nextBelow(12);
        for (int i = 0; i < n; ++i) {
            const std::uint64_t key = rng.nextBelow(64);
            bool dup = false;
            for (const auto &e : c)
                dup |= e.key == key;
            if (!dup)
                c.push_back({key, key});
        }
        const auto idx = s->pick(c);
        ASSERT_LT(idx, c.size());
    }
}

TEST_P(PolicyProperty, AllWarpsCompleteFiniteWork)
{
    // Warps retire after five issues; every policy must drain the pool
    // (greedy policies drain oldest-first, but must still drain).
    auto s = WarpScheduler::create(GetParam(), 2);
    std::map<std::uint64_t, int> remaining;
    for (std::uint64_t k = 0; k < 6; ++k)
        remaining[k] = 5;
    int rounds = 0;
    while (!remaining.empty() && rounds < 1000) {
        std::vector<WarpCandidate> avail;
        for (const auto &[k, n] : remaining)
            avail.push_back({k, k});
        const auto idx = s->pick(avail);
        const auto key = avail[idx].key;
        if (--remaining[key] == 0)
            remaining.erase(key);
        ++rounds;
    }
    EXPECT_TRUE(remaining.empty());
    EXPECT_EQ(rounds, 30);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperty,
                         ::testing::Values(
                             SchedulerPolicy::LooseRoundRobin,
                             SchedulerPolicy::GreedyThenOldest,
                             SchedulerPolicy::TwoLevel));

} // namespace
} // namespace vtsim
