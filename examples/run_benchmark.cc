/**
 * @file
 * Command-line driver: run any suite benchmark under any machine
 * configuration without writing code — the entry point a downstream
 * user scripts sweeps with.
 *
 * Usage:
 *   run_benchmark <name> [<name>...] [options]
 *     --jobs N              run several benchmarks N at a time (also
 *                           honors VTSIM_JOBS, exactly like the figure
 *                           binaries; malformed values are an error)
 *     --sim-threads N       shard each simulation's SMs and memory
 *                           partitions across N threads — same stats,
 *                           traces and checkpoints, less wall clock
 *                           (also honors VTSIM_SIM_THREADS)
 *     --vt                  enable Virtual Thread
 *     --vtmax N             virtual-CTA budget per SM (0 = capacity)
 *     --swap-latency N      swap out AND in latency, cycles
 *     --scheduler P         lrr | gto | two-level
 *     --sms N               number of SMs
 *     --scale N             problem scale (0 = tiny, 1 = default)
 *     --bypass-l1           route global loads around the L1
 *     --checkpoint PATH     write a vtsim-ckpt-v1 checkpoint (once at
 *                           kernel end, or on a cadence with
 *                           --checkpoint-every N)
 *     --restore PATH        resume a checkpointed run (same benchmark
 *                           and configuration flags as the original)
 *     --exec MODE           functional-execution path: microcode
 *                           (default) or legacy (bit-identical A/B)
 *     --record-trace PATH   write a vtsim-mtrace-v1 memory-access
 *                           trace of the run (forces sequential)
 *     --replay-trace PATH   drive the memory system from a recorded
 *                           trace instead of executing the benchmark;
 *                           nothing executes, so results print REPLAY
 *                           instead of VERIFIED
 *     --dump-stats          print every component counter afterwards
 *   run_benchmark --list    list available benchmarks
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/trace.hh"
#include "config/sim_mode.hh"
#include "gpu/gpu.hh"
#include "parallel_runner.hh"
#include "workloads/workload.hh"

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: run_benchmark <name> [<name>...] [--jobs N] "
                 "[--sim-threads N]\n"
                 "       [--vt] [--vtmax N]\n"
                 "       [--swap-latency N]\n"
                 "       [--scheduler lrr|gto|two-level] [--sms N] "
                 "[--scale N]\n"
                 "       [--bypass-l1] [--throttle] [--trace FLAGS]\n"
                 "       [--stats-interval N] [--trace-json PATH]\n"
                 "       [--checkpoint PATH] [--checkpoint-every N]\n"
                 "       [--restore PATH] [--exec microcode|legacy]\n"
                 "       [--record-trace PATH] [--replay-trace PATH]\n"
                 "       [--dump-stats] | --list\n"
                 "  trace flags: issue,mem,swap,cta,dram,barrier,all "
                 "(to stderr)\n"
                 "  --stats-interval: stat-delta JSONL every N cycles "
                 "(to stderr)\n"
                 "  --trace-json: Perfetto trace (load at "
                 "ui.perfetto.dev)\n"
                 "  --checkpoint: vtsim-ckpt-v1 snapshot, resumable "
                 "with --restore\n"
                 "  --sim-threads: deterministic sharded simulation "
                 "(bit-identical output)\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace vtsim;

    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        usage();
    if (args[0] == "--list") {
        for (const auto &name : benchmarkNames()) {
            auto wl = makeWorkload(name, 0);
            std::printf("%-14s %s\n", name.c_str(),
                        wl->description().c_str());
        }
        return 0;
    }

    // Leading non-flag arguments are benchmark names; several fan out
    // across the batch runner below.
    std::vector<std::string> names;
    std::size_t first_flag = 0;
    while (first_flag < args.size() &&
           args[first_flag].rfind("--", 0) != 0)
        names.push_back(args[first_flag++]);
    if (names.empty())
        usage();
    const std::string name = names.front();
    GpuConfig cfg = GpuConfig::fermiLike();
    std::uint32_t scale = 1;
    bool dump_stats = false;
    Cycle stats_interval = 0;
    std::string trace_json_path;
    std::string checkpoint_path;
    Cycle checkpoint_every = 0;
    std::string restore_path;

    auto next_value = [&args](std::size_t &i) -> std::string {
        if (++i >= args.size())
            usage();
        return args[i];
    };
    for (std::size_t i = first_flag; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--jobs") {
            // Validated below by resolveJobs — the figure binaries'
            // exact --jobs/VTSIM_JOBS resolution, shared, not
            // reimplemented.
            next_value(i);
        } else if (a.rfind("--jobs=", 0) == 0) {
            // Handled by resolveJobs.
        } else if (a == "--sim-threads") {
            // Validated below by parseTelemetryArgs — the figure
            // binaries' exact --sim-threads/VTSIM_SIM_THREADS
            // resolution, shared, not reimplemented.
            next_value(i);
        } else if (a.rfind("--sim-threads=", 0) == 0) {
            // Handled by parseTelemetryArgs.
        } else if (a == "--exec" || a == "--record-trace" ||
                   a == "--replay-trace") {
            // Validated below by parseTelemetryArgs (shared with the
            // figure binaries).
            next_value(i);
        } else if (a.rfind("--exec=", 0) == 0 ||
                   a.rfind("--record-trace=", 0) == 0 ||
                   a.rfind("--replay-trace=", 0) == 0) {
            // Handled by parseTelemetryArgs.
        } else if (a == "--vt") {
            cfg.vtEnabled = true;
        } else if (a == "--vtmax") {
            cfg.vtMaxVirtualCtasPerSm = std::stoul(next_value(i));
        } else if (a == "--swap-latency") {
            cfg.vtSwapOutLatency = std::stoul(next_value(i));
            cfg.vtSwapInLatency = cfg.vtSwapOutLatency;
        } else if (a == "--scheduler") {
            const std::string p = next_value(i);
            if (p == "lrr")
                cfg.schedulerPolicy = SchedulerPolicy::LooseRoundRobin;
            else if (p == "gto")
                cfg.schedulerPolicy = SchedulerPolicy::GreedyThenOldest;
            else if (p == "two-level")
                cfg.schedulerPolicy = SchedulerPolicy::TwoLevel;
            else
                usage();
        } else if (a == "--sms") {
            cfg.numSms = std::stoul(next_value(i));
        } else if (a == "--scale") {
            scale = std::stoul(next_value(i));
        } else if (a == "--bypass-l1") {
            cfg.l1BypassGlobalLoads = true;
        } else if (a == "--throttle") {
            cfg.throttleEnabled = true;
        } else if (a == "--trace") {
            Trace::instance().enable(Trace::parseFlags(next_value(i)),
                                     &std::cerr);
        } else if (a == "--stats-interval") {
            stats_interval = std::stoull(next_value(i));
        } else if (a == "--trace-json") {
            trace_json_path = next_value(i);
        } else if (a == "--checkpoint") {
            checkpoint_path = next_value(i);
        } else if (a == "--checkpoint-every") {
            checkpoint_every = std::stoull(next_value(i));
        } else if (a == "--restore") {
            restore_path = next_value(i);
        } else if (a == "--dump-stats") {
            dump_stats = true;
        } else {
            usage();
        }
    }

    // Shared resolution (and strict validation) of --jobs/VTSIM_JOBS:
    // a malformed value aborts with a clear message instead of
    // silently falling back to one worker.
    const unsigned jobs = bench::resolveJobs(argc, argv);
    // Same strict, shared resolution for --sim-threads, --exec and the
    // memory-trace flags (record + replay together is a fatal error
    // inside parseTelemetryArgs).
    const bench::TelemetryOptions shared =
        bench::parseTelemetryArgs(argc, argv);
    const unsigned sim_threads = shared.simThreads;
    bench::setTelemetryOptions(shared);
    bench::applyExecMode(cfg);

    // This binary's own --checkpoint/--restore flags join the shared
    // trace flags in one mode-matrix check (config/sim_mode.hh).
    {
        SimModeSpec mode;
        mode.recordTrace = !shared.recordTracePath.empty();
        mode.replayTrace = !shared.replayTracePath.empty();
        mode.restore = !restore_path.empty();
        mode.checkpointEvery = checkpoint_every;
        mode.vtEnabled = cfg.vtEnabled;
        requireValidSimMode(mode);
    }

    if (names.size() > 1) {
        if (dump_stats || !checkpoint_path.empty() ||
            !restore_path.empty()) {
            std::fprintf(stderr,
                         "run_benchmark: --dump-stats, --checkpoint "
                         "and --restore need a single benchmark\n");
            return 2;
        }
        bench::TelemetryOptions telemetry = shared;
        telemetry.statsInterval = stats_interval;
        telemetry.traceJsonPath = trace_json_path;
        bench::setTelemetryOptions(telemetry);
        std::vector<bench::RunSpec> specs;
        for (const auto &n : names)
            specs.push_back({n, cfg, scale});
        const auto results = bench::runAll(specs, jobs);
        for (const auto &r : results) {
            std::printf("%s scale=%u vt=%s: %llu cycles, IPC %.3f, "
                        "%llu warp instrs, %llu CTAs, %llu swaps, "
                        "l1 %.1f%%, l2 %.1f%%, %llu DRAM bytes — "
                        "results %s\n",
                        r.workload.c_str(), scale,
                        cfg.vtEnabled ? "on" : "off",
                        (unsigned long long)r.stats.cycles, r.stats.ipc,
                        (unsigned long long)r.stats.warpInstructions,
                        (unsigned long long)r.stats.ctasCompleted,
                        (unsigned long long)r.stats.swapOuts,
                        100 * r.stats.l1HitRate(),
                        100 * r.stats.l2HitRate(),
                        (unsigned long long)r.stats.dramBytes,
                        !shared.replayTracePath.empty()
                            ? "REPLAY"
                            : (r.verified ? "VERIFIED" : "WRONG"));
        }
        return 0;
    }

    if (!shared.replayTracePath.empty()) {
        // Trace replay: the benchmark name only labels the output row;
        // nothing executes, so there is no workload to prepare or
        // verify.
        Gpu gpu(cfg);
        if (sim_threads > 0)
            gpu.setSimThreads(sim_threads);
        if (stats_interval > 0)
            gpu.enableIntervalSampler(stats_interval, std::cerr);
        if (!trace_json_path.empty())
            gpu.enableTraceJson(trace_json_path);
        if (!checkpoint_path.empty())
            gpu.setCheckpoint(checkpoint_path, checkpoint_every);
        if (!restore_path.empty())
            gpu.restoreCheckpoint(restore_path);
        const KernelStats stats = gpu.replayTrace(shared.replayTracePath);
        std::printf("%s scale=%u vt=%s: %llu cycles, IPC %.3f, "
                    "%llu warp instrs, %llu CTAs, %llu swaps, "
                    "l1 %.1f%%, l2 %.1f%%, %llu DRAM bytes — "
                    "results REPLAY\n",
                    name.c_str(), scale, cfg.vtEnabled ? "on" : "off",
                    (unsigned long long)stats.cycles, stats.ipc,
                    (unsigned long long)stats.warpInstructions,
                    (unsigned long long)stats.ctasCompleted,
                    (unsigned long long)stats.swapOuts,
                    100 * stats.l1HitRate(), 100 * stats.l2HitRate(),
                    (unsigned long long)stats.dramBytes);
        if (dump_stats)
            gpu.dumpStats(std::cout);
        return 0;
    }

    auto wl = makeWorkload(name, scale);
    const Kernel kernel = wl->buildKernel();
    Gpu gpu(cfg);
    if (sim_threads > 0)
        gpu.setSimThreads(sim_threads);
    if (stats_interval > 0)
        gpu.enableIntervalSampler(stats_interval, std::cerr);
    if (!trace_json_path.empty())
        gpu.enableTraceJson(trace_json_path);
    if (!checkpoint_path.empty())
        gpu.setCheckpoint(checkpoint_path, checkpoint_every);
    if (!shared.recordTracePath.empty())
        gpu.enableMtraceRecord(shared.recordTracePath);
    // Restored runs resume the checkpointed launch: device memory comes
    // from the checkpoint, so prepare() must not overwrite it. It runs
    // into a scratch memory instead, so the workload still learns its
    // buffer addresses and golden outputs for the verify step.
    LaunchParams lp;
    if (restore_path.empty()) {
        lp = wl->prepare(gpu.memory());
    } else {
        GlobalMemory scratch;
        wl->prepare(scratch);
        lp = gpu.restoreCheckpoint(restore_path);
    }
    const KernelStats stats = gpu.launch(kernel, lp);
    const bool ok = wl->verify(gpu.memory());

    std::printf("%s scale=%u vt=%s: %llu cycles, IPC %.3f, "
                "%llu warp instrs, %llu CTAs, %llu swaps, "
                "l1 %.1f%%, l2 %.1f%%, %llu DRAM bytes — results %s\n",
                name.c_str(), scale, cfg.vtEnabled ? "on" : "off",
                (unsigned long long)stats.cycles, stats.ipc,
                (unsigned long long)stats.warpInstructions,
                (unsigned long long)stats.ctasCompleted,
                (unsigned long long)stats.swapOuts,
                100 * stats.l1HitRate(), 100 * stats.l2HitRate(),
                (unsigned long long)stats.dramBytes,
                ok ? "VERIFIED" : "WRONG");
    if (dump_stats)
        gpu.dumpStats(std::cout);
    return ok ? 0 : 1;
} catch (const vtsim::FatalError &e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
}
