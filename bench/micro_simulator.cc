/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths:
 * useful when working on vtsim itself (they measure the simulator, not
 * the simulated machine).
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "gpu/gpu.hh"
#include "isa/assembler.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "sm/simt_stack.hh"
#include "workloads/workload.hh"

namespace {

using namespace vtsim;

void
BM_AssembleVecAdd(benchmark::State &state)
{
    auto wl = makeWorkload("vecadd", 0);
    for (auto _ : state) {
        Kernel k = wl->buildKernel();
        benchmark::DoNotOptimize(k.size());
    }
}
BENCHMARK(BM_AssembleVecAdd);

void
BM_CoalesceStrided(benchmark::State &state)
{
    const auto stride = state.range(0);
    std::vector<LaneAccess> acc;
    for (std::uint32_t lane = 0; lane < warpSize; ++lane)
        acc.push_back({lane, Addr(lane) * stride});
    for (auto _ : state) {
        auto txns = coalesce(acc, 128);
        benchmark::DoNotOptimize(txns.size());
    }
}
BENCHMARK(BM_CoalesceStrided)->Arg(4)->Arg(16)->Arg(128);

void
BM_CacheAccessHit(benchmark::State &state)
{
    CacheParams p;
    p.size = 16 * 1024;
    p.assoc = 4;
    p.lineSize = 128;
    Cache c(p);
    MemRequest req;
    req.lineAddr = 0;
    c.access(req);
    c.fill(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.access(req));
}
BENCHMARK(BM_CacheAccessHit);

void
BM_SimtStackDivergence(benchmark::State &state)
{
    Instruction br;
    br.op = Opcode::BRA;
    br.src[0] = 0;
    br.branchTarget = 5;
    br.reconvergePc = 5;
    for (auto _ : state) {
        SimtStack s;
        s.reset(ActiveMask::all());
        s.branch(br, 0, ActiveMask(0xffff0000u));
        for (int i = 1; i < 5; ++i)
            s.advance();
        benchmark::DoNotOptimize(s.depth());
    }
}
BENCHMARK(BM_SimtStackDivergence);

void
BM_SimulateSmallKernel(benchmark::State &state)
{
    // End-to-end simulator throughput on a tiny workload; the reported
    // rate is simulated-cycles per host-second.
    std::uint64_t simulated = 0;
    for (auto _ : state) {
        auto wl = makeWorkload("vecadd", 0);
        const Kernel k = wl->buildKernel();
        GpuConfig cfg = GpuConfig::testMini();
        Gpu gpu(cfg);
        const LaunchParams lp = wl->prepare(gpu.memory());
        const auto stats = gpu.launch(k, lp);
        simulated += stats.cycles;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSmallKernel);

void
BM_SimulateVtKernel(benchmark::State &state)
{
    std::uint64_t simulated = 0;
    for (auto _ : state) {
        auto wl = makeWorkload("vecadd", 0);
        const Kernel k = wl->buildKernel();
        GpuConfig cfg = GpuConfig::testMini();
        cfg.vtEnabled = true;
        Gpu gpu(cfg);
        const LaunchParams lp = wl->prepare(gpu.memory());
        const auto stats = gpu.launch(k, lp);
        simulated += stats.cycles;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateVtKernel);

} // namespace

BENCHMARK_MAIN();
