/**
 * @file
 * Text assembler for VASM — the front-end that stands in for a PTX
 * toolchain. Grammar (one instruction per line, '#' comments):
 *
 *   .kernel NAME            kernel name (required, first)
 *   .regs N                 minimum registers per thread (optional)
 *   .shared BYTES           static shared memory per CTA (optional)
 *   LABEL:                  label
 *   op dst, src...          instruction; immediates are bare integers,
 *                           registers are rN, memory operands are
 *                           [rN] or [rN+imm] or [rN-imm]
 *   isetp.lt r1, r2, r3     compare ops carry the predicate suffix
 *   bra r1, target          conditional branch
 *   bra r1, target, join=L  explicit reconvergence label
 *   jmp target              unconditional branch
 */

#ifndef VTSIM_ISA_ASSEMBLER_HH
#define VTSIM_ISA_ASSEMBLER_HH

#include <string>

#include "isa/kernel.hh"

namespace vtsim {

/**
 * Assemble VASM source into a Kernel.
 *
 * @param source The assembly text.
 * @return The verified kernel.
 * @throws FatalError on any syntax or semantic error, with line number.
 */
Kernel assemble(const std::string &source);

} // namespace vtsim

#endif // VTSIM_ISA_ASSEMBLER_HH
