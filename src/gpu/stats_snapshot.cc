#include "gpu/stats_snapshot.hh"

#include "common/log.hh"
#include "gpu/gpu.hh"

namespace vtsim {

StatsSnapshot
StatsSnapshot::capture(const telemetry::StatRegistry &registry)
{
    StatsSnapshot snap;
    registry.collectScalars(snap.values_);
    return snap;
}

void
StatsSnapshot::delta(const StatsSnapshot &before,
                     const telemetry::StatRegistry &registry,
                     KernelStats &stats) const
{
    deltaGrid(before, registry, -1, stats);
}

void
StatsSnapshot::deltaGrid(const StatsSnapshot &before,
                         const telemetry::StatRegistry &registry,
                         std::int32_t grid, KernelStats &stats) const
{
    using telemetry::KernelStatRole;
    const auto &probes = registry.scalars();
    VTSIM_ASSERT(values_.size() == probes.size() &&
                     before.values_.size() == probes.size(),
                 "snapshots of different machines");
    for (std::size_t i = 0; i < probes.size(); ++i) {
        if (probes[i].grid != grid)
            continue;
        const std::uint64_t d = values_[i] - before.values_[i];
        switch (probes[i].role) {
          case KernelStatRole::None: break;
          case KernelStatRole::WarpInstructions:
            stats.warpInstructions += d; break;
          case KernelStatRole::ThreadInstructions:
            stats.threadInstructions += d; break;
          case KernelStatRole::CtasCompleted:
            stats.ctasCompleted += d; break;
          case KernelStatRole::SwapOuts: stats.swapOuts += d; break;
          case KernelStatRole::SwapIns: stats.swapIns += d; break;
          case KernelStatRole::L1Hits: stats.l1Hits += d; break;
          case KernelStatRole::L1Misses: stats.l1Misses += d; break;
          case KernelStatRole::L2Hits: stats.l2Hits += d; break;
          case KernelStatRole::L2Misses: stats.l2Misses += d; break;
          case KernelStatRole::DramRowHits: stats.dramRowHits += d; break;
          case KernelStatRole::DramRowMisses:
            stats.dramRowMisses += d; break;
          case KernelStatRole::DramBytes: stats.dramBytes += d; break;
          case KernelStatRole::StallIssued:
            stats.stalls.issued += d; break;
          case KernelStatRole::StallMem: stats.stalls.memStall += d; break;
          case KernelStatRole::StallShort:
            stats.stalls.shortStall += d; break;
          case KernelStatRole::StallBarrier:
            stats.stalls.barrierStall += d; break;
          case KernelStatRole::StallSwap:
            stats.stalls.swapStall += d; break;
          case KernelStatRole::StallIdle: stats.stalls.idle += d; break;
        }
    }
}

} // namespace vtsim
