#include "sm/ldst_unit.hh"

#include "common/log.hh"
#include "common/trace.hh"
#include "mem/interconnect.hh"
#include "sim/serialize_util.hh"

namespace vtsim {

LdstUnit::LdstUnit(SmId sm_id, const GpuConfig &config, Interconnect &noc,
                   LdstClient &client)
    : smId_(sm_id), config_(config), noc_(noc), client_(client),
      l1_(CacheParams{"sm" + std::to_string(sm_id) + ".l1d", config.l1Size,
                      config.l1Assoc, config.l1LineSize, config.l1Mshrs,
                      config.l1MshrTargets}),
      stats_("sm" + std::to_string(sm_id) + ".ldst")
{
    stats_.addCounter("transactions", &transactions_,
                      "coalesced global transactions");
    stats_.addCounter("store_txns", &storeTxns_, "store transactions");
    stats_.addCounter("atom_txns", &atomTxns_, "atomic transactions");
    stats_.addCounter("bypass_txns", &bypassTxns_,
                      "streaming loads routed around the L1");
    stats_.addCounter("inject_stalls", &injectStalls_,
                      "cycles the inject queue head was rejected");
    stats_.addScalar("mlp", &mlp_,
                     "outstanding off-chip loads sampled per cycle");
    stats_.addScalar("queue_wait", &queueWait_,
                     "cycles a transaction waited to enter the L1/NoC");
    stats_.addScalar("round_trip", &roundTrip_,
                     "cycles from injection to completion");
}

std::uint32_t
LdstUnit::allocPending(VirtualCtaId vcta, std::uint32_t warp, RegIndex dst,
                       std::uint32_t remaining)
{
    std::uint32_t idx;
    if (!pendingFree_.empty()) {
        idx = pendingFree_.back();
        pendingFree_.pop_back();
    } else {
        idx = pendingSlab_.size();
        pendingSlab_.emplace_back();
    }
    PendingWarpMem &p = pendingSlab_[idx];
    p.vcta = vcta;
    p.warpInCta = warp;
    p.dst = dst;
    p.remaining = remaining;
    p.inUse = true;
    return idx;
}

std::uint64_t
LdstUnit::allocTransaction(const Transaction &t)
{
    std::uint64_t token;
    if (!txnFree_.empty()) {
        token = txnFree_.back();
        txnFree_.pop_back();
    } else {
        token = txnSlab_.size();
        txnSlab_.emplace_back();
    }
    txnSlab_[token] = t;
    txnSlab_[token].inUse = true;
    ++inFlight_;
    return token;
}

void
LdstUnit::issueGlobal(VirtualCtaId vcta, std::uint32_t warp_in_cta,
                      const Instruction &inst,
                      const std::vector<LaneAccess> &accesses,
                      GridId grid)
{
    VTSIM_ASSERT(inst.isGlobalMem(), "issueGlobal with non-global op");
    VTSIM_ASSERT(!accesses.empty(), "issueGlobal with no accesses");

    const auto coalesced = coalesce(accesses, config_.l1LineSize);
    transactions_ += coalesced.size();

    MemAccessKind kind = MemAccessKind::Load;
    if (inst.op == Opcode::STG)
        kind = MemAccessKind::Store;
    else if (inst.op == Opcode::ATOMG_ADD)
        kind = MemAccessKind::Atomic;

    const bool bypass = kind == MemAccessKind::Load &&
                        (config_.l1BypassGlobalLoads ||
                         inst.cacheOp == CacheOp::Streaming);

    std::uint32_t pending_idx = 0;
    if (kind != MemAccessKind::Store) {
        pending_idx = allocPending(vcta, warp_in_cta, inst.dst,
                                   coalesced.size());
    }

    std::uint8_t flags = 0;
    if (kind == MemAccessKind::Store)
        flags |= MtraceAccess::flagStore;
    if (kind == MemAccessKind::Atomic)
        flags |= MtraceAccess::flagAtomic;
    if (bypass)
        flags |= MtraceAccess::flagBypassL1;

    for (const auto &ca : coalesced) {
        Transaction t;
        t.pendingIdx = pending_idx;
        t.lineAddr = ca.lineAddr;
        t.bytes = ca.bytes;
        t.kind = kind;
        t.bypassL1 = bypass;
        t.createdAt = now_;
        t.grid = grid;
        injectQueue_.push_back(allocTransaction(t));
        if (kind == MemAccessKind::Store)
            ++storeTxns_;
        else if (kind == MemAccessKind::Atomic)
            ++atomTxns_;
        if (mtrace_) {
            mtrace_->access(now_, smId_, flags, ca.lineAddr, ca.bytes,
                            ca.lanes, vcta << 8 | warp_in_cta);
        }
    }
}

void
LdstUnit::replayInject(const MtraceAccess &access)
{
    ++transactions_;
    MemAccessKind kind = MemAccessKind::Load;
    if (access.isStore())
        kind = MemAccessKind::Store;
    else if (access.isAtomic())
        kind = MemAccessKind::Atomic;

    // Loads and atomics need a live pending entry: markOffChip and
    // completeTransaction dereference it for the client callbacks (the
    // replaying SM ignores those — it has no resident CTAs).
    std::uint32_t pending_idx = 0;
    if (kind != MemAccessKind::Store)
        pending_idx = allocPending(invalidId, access.warpTag & 0xff,
                                   noReg, 1);

    Transaction t;
    t.pendingIdx = pending_idx;
    t.lineAddr = access.lineAddr;
    t.bytes = access.bytes;
    t.kind = kind;
    t.bypassL1 = access.bypassL1();
    t.createdAt = now_;
    injectQueue_.push_back(allocTransaction(t));
    if (kind == MemAccessKind::Store)
        ++storeTxns_;
    else if (kind == MemAccessKind::Atomic)
        ++atomTxns_;
}

void
LdstUnit::markOffChip(std::uint64_t token)
{
    Transaction &t = txnSlab_[token];
    VTSIM_ASSERT(!t.offChip, "transaction already off-chip");
    t.offChip = true;
    ++offChipOutstanding_;
    const PendingWarpMem &p = pendingSlab_[t.pendingIdx];
    client_.offChipIssued(p.vcta, p.warpInCta);
}

bool
LdstUnit::injectOne(Cycle now)
{
    if (injectQueue_.empty())
        return false;
    const std::uint64_t token = injectQueue_.front();
    Transaction &t = txnSlab_[token];
    t.injectedAt = now;
    queueWait_.sample(static_cast<double>(now - t.createdAt));

    if (t.kind == MemAccessKind::Store) {
        // Write-through, no allocate, no response.
        l1_.storeAccess(t.lineAddr);
        MemRequest req;
        req.lineAddr = t.lineAddr;
        req.bytes = t.bytes;
        req.kind = MemAccessKind::Store;
        req.srcSm = smId_;
        req.grid = t.grid;
        noc_.sendRequest(req, now);
        injectQueue_.pop_front();
        // Stores carry no pending entry; retire the transaction now.
        t.inUse = false;
        txnFree_.push_back(token);
        --inFlight_;
        return true;
    }

    if (t.kind == MemAccessKind::Atomic) {
        // Atomics are performed at the L2: bypass the L1 entirely.
        MemRequest req;
        req.lineAddr = t.lineAddr;
        req.bytes = t.bytes;
        req.kind = MemAccessKind::Atomic;
        req.srcSm = smId_;
        req.grid = t.grid;
        req.sink = this;
        req.token = token;
        markOffChip(token);
        noc_.sendRequest(req, now);
        injectQueue_.pop_front();
        return true;
    }

    if (t.kind == MemAccessKind::Load && t.bypassL1) {
        // Streaming load: straight to the L2, no L1 allocation.
        MemRequest req;
        req.lineAddr = t.lineAddr;
        req.bytes = t.bytes;
        req.kind = MemAccessKind::Load;
        req.srcSm = smId_;
        req.grid = t.grid;
        req.sink = this;
        req.token = token;
        markOffChip(token);
        ++bypassTxns_;
        noc_.sendRequest(req, now);
        injectQueue_.pop_front();
        return true;
    }

    // Load: try the L1.
    MemRequest probe;
    probe.lineAddr = t.lineAddr;
    probe.bytes = t.bytes;
    probe.kind = MemAccessKind::Load;
    probe.srcSm = smId_;
    probe.grid = t.grid;
    probe.sink = this;
    probe.token = token;

    switch (l1_.access(probe)) {
      case CacheOutcome::Hit:
        VTSIM_TRACE(TraceFlag::Mem, now, stats_.name(), "L1 hit line 0x",
                    std::hex, t.lineAddr);
        hitPending_.push({now + config_.l1HitLatency, token});
        injectQueue_.pop_front();
        return true;
      case CacheOutcome::MissNew: {
        VTSIM_TRACE(TraceFlag::Mem, now, stats_.name(),
                    "L1 miss line 0x", std::hex, t.lineAddr);
        t.throughL1 = true;
        markOffChip(token);
        MemRequest req = probe;
        req.bytes = config_.l1LineSize; // Fetch the whole line.
        noc_.sendRequest(req, now);
        injectQueue_.pop_front();
        return true;
      }
      case CacheOutcome::MissMerged:
        // Parked in the MSHR; completes when the fill arrives.
        markOffChip(token);
        injectQueue_.pop_front();
        return true;
      case CacheOutcome::RejectMshrFull:
      case CacheOutcome::RejectTargets:
        ++injectStalls_;
        return false; // Head stays; retry next cycle.
    }
    return false;
}

void
LdstUnit::tick(Cycle now)
{
    now_ = now;
    // Close the sample gap through this cycle: consecutive ticks close
    // exactly one cycle; after a fast-forward window the same call
    // replays the skipped per-cycle samples (constant count) in bulk.
    mlp_.sampleN(offChipOutstanding_, now + 1 - statsTo_);
    statsTo_ = now + 1;
    while (!hitPending_.empty() && hitPending_.top().readyAt <= now) {
        const std::uint64_t token = hitPending_.top().token;
        hitPending_.pop();
        completeTransaction(token);
    }
    for (std::uint32_t i = 0; i < config_.ldstThroughputPerSm; ++i) {
        if (!injectOne(now))
            break;
    }
}

void
LdstUnit::memResponse(std::uint64_t token, Cycle now)
{
    // Settle the client's fast-forward window, then our own per-cycle
    // MLP samples up to (but excluding) this cycle, before any counter
    // moves: the window's samples must see the pre-completion
    // outstanding count, and round_trip the real delivery cycle,
    // exactly as in the cycle-by-cycle loop. Cycle @p now itself is
    // sampled by the upcoming tick, which observes the new count.
    client_.responseArriving(now);
    if (now > statsTo_) {
        mlp_.sampleN(offChipOutstanding_, now - statsTo_);
        statsTo_ = now;
    }
    now_ = now;
    VTSIM_ASSERT(token < txnSlab_.size() && txnSlab_[token].inUse,
                 "response for unknown transaction ", token);
    Transaction &t = txnSlab_[token];
    if (t.throughL1) {
        // This response is a line fill: complete every merged waiter.
        // The L1 is write-through, so evicted victims are never dirty.
        const Addr line = t.lineAddr;
        for (const MemRequest &target : l1_.fill(line).targets)
            completeTransaction(target.token);
    } else {
        completeTransaction(token);
    }
}

void
LdstUnit::completeTransaction(std::uint64_t token)
{
    Transaction &t = txnSlab_[token];
    VTSIM_ASSERT(t.inUse, "double completion of transaction ", token);
    PendingWarpMem &p = pendingSlab_[t.pendingIdx];
    VTSIM_ASSERT(p.inUse, "completion for retired warp-mem entry");

    if (t.offChip) {
        VTSIM_ASSERT(offChipOutstanding_ > 0, "off-chip underflow");
        --offChipOutstanding_;
        roundTrip_.sample(static_cast<double>(now_ - t.injectedAt));
        client_.offChipReturned(p.vcta, p.warpInCta);
    }

    t.inUse = false;
    txnFree_.push_back(token);
    --inFlight_;

    VTSIM_ASSERT(p.remaining > 0, "warp-mem remaining underflow");
    if (--p.remaining == 0) {
        client_.loadComplete(p.vcta, p.warpInCta, p.dst);
        p.inUse = false;
        pendingFree_.push_back(t.pendingIdx);
    }
}

Cycle
LdstUnit::nextEventCycle(Cycle now)
{
    if (!injectQueue_.empty())
        return now;
    if (!hitPending_.empty())
        return std::max(now, hitPending_.top().readyAt);
    return neverCycle;
}

void
LdstUnit::settleTo(Cycle cycle)
{
    if (cycle > statsTo_) {
        mlp_.sampleN(offChipOutstanding_, cycle - statsTo_);
        statsTo_ = cycle;
    }
}

void
LdstUnit::reset()
{
    l1_.reset();
    pendingSlab_.clear();
    pendingFree_.clear();
    txnSlab_.clear();
    txnFree_.clear();
    injectQueue_.clear();
    hitPending_ = {};
    now_ = 0;
    statsTo_ = 0;
    inFlight_ = 0;
    offChipOutstanding_ = 0;
    transactions_.reset();
    storeTxns_.reset();
    atomTxns_.reset();
    bypassTxns_.reset();
    injectStalls_.reset();
    mlp_.reset();
    queueWait_.reset();
    roundTrip_.reset();
}

void
LdstUnit::save(Serializer &ser) const
{
    const std::size_t sec = ser.beginSection("ldst");
    static_assert(std::is_trivially_copyable_v<HitCompletion>);
    // PendingWarpMem and Transaction carry interior padding, so both
    // slabs go out field by field to keep the bytes deterministic.
    ser.put<std::uint64_t>(pendingSlab_.size());
    for (const PendingWarpMem &p : pendingSlab_) {
        ser.put(p.vcta);
        ser.put(p.warpInCta);
        ser.put(p.dst);
        ser.put(p.remaining);
        ser.put<std::uint8_t>(p.inUse);
    }
    ser.putVec(pendingFree_);
    ser.put<std::uint64_t>(txnSlab_.size());
    for (const Transaction &t : txnSlab_) {
        ser.put(t.pendingIdx);
        ser.put(t.lineAddr);
        ser.put(t.bytes);
        ser.put<std::uint8_t>(static_cast<std::uint8_t>(t.kind));
        ser.put<std::uint8_t>(t.bypassL1);
        ser.put<std::uint8_t>(t.throughL1);
        ser.put<std::uint8_t>(t.offChip);
        ser.put<std::uint8_t>(t.inUse);
        ser.put(t.createdAt);
        ser.put(t.injectedAt);
        ser.put(t.grid);
    }
    ser.putVec(txnFree_);
    ser.put<std::uint64_t>(injectQueue_.size());
    for (const std::uint64_t token : injectQueue_)
        ser.put(token);
    auto hits = hitPending_;
    ser.put<std::uint64_t>(hits.size());
    while (!hits.empty()) {
        ser.put(hits.top());
        hits.pop();
    }
    // now_ is deliberately not checkpointed (see the member comment):
    // it records which tick last ran in full, and that cadence differs
    // between an uninterrupted run and a restored/sharded one.
    ser.put(statsTo_);
    ser.put(inFlight_);
    ser.put(offChipOutstanding_);
    saveStat(ser, transactions_);
    saveStat(ser, storeTxns_);
    saveStat(ser, atomTxns_);
    saveStat(ser, bypassTxns_);
    saveStat(ser, injectStalls_);
    saveStat(ser, mlp_);
    saveStat(ser, queueWait_);
    saveStat(ser, roundTrip_);
    ser.endSection(sec);
    l1_.save(ser);
}

void
LdstUnit::restore(Deserializer &des)
{
    des.beginSection("ldst");
    pendingSlab_.resize(des.get<std::uint64_t>());
    for (PendingWarpMem &p : pendingSlab_) {
        des.get(p.vcta);
        des.get(p.warpInCta);
        des.get(p.dst);
        des.get(p.remaining);
        p.inUse = des.get<std::uint8_t>() != 0;
    }
    des.getVec(pendingFree_);
    txnSlab_.resize(des.get<std::uint64_t>());
    for (Transaction &t : txnSlab_) {
        des.get(t.pendingIdx);
        des.get(t.lineAddr);
        des.get(t.bytes);
        t.kind = static_cast<MemAccessKind>(des.get<std::uint8_t>());
        t.bypassL1 = des.get<std::uint8_t>() != 0;
        t.throughL1 = des.get<std::uint8_t>() != 0;
        t.offChip = des.get<std::uint8_t>() != 0;
        t.inUse = des.get<std::uint8_t>() != 0;
        des.get(t.createdAt);
        des.get(t.injectedAt);
        des.get(t.grid);
    }
    des.getVec(txnFree_);
    injectQueue_.clear();
    const auto inject_count = des.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < inject_count; ++i)
        injectQueue_.push_back(des.get<std::uint64_t>());
    hitPending_ = {};
    const auto hit_count = des.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < hit_count; ++i)
        hitPending_.push(des.get<HitCompletion>());
    now_ = 0;
    des.get(statsTo_);
    des.get(inFlight_);
    des.get(offChipOutstanding_);
    restoreStat(des, transactions_);
    restoreStat(des, storeTxns_);
    restoreStat(des, atomTxns_);
    restoreStat(des, bypassTxns_);
    restoreStat(des, injectStalls_);
    restoreStat(des, mlp_);
    restoreStat(des, queueWait_);
    restoreStat(des, roundTrip_);
    des.endSection();
    l1_.restore(des);
}

bool
LdstUnit::idle() const
{
    return injectQueue_.empty() && inFlight_ == 0 && hitPending_.empty();
}

} // namespace vtsim
