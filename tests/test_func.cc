/**
 * @file
 * Unit tests for the functional execution engine: per-opcode semantics,
 * special registers, masking, memory access reporting.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "func/exec_context.hh"
#include "func/global_memory.hh"

namespace vtsim {
namespace {

class FuncTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        launch_.grid = Dim3(4, 2);
        launch_.cta = Dim3(64); // 2 warps
        launch_.params = {111, 222, 333};
        cta_.init(3, Dim3(3, 0, 0), 64, 16, 256);
    }

    /** Run one instruction on warp 0 with all lanes active. */
    ExecResult
    run(const Instruction &inst, ActiveMask mask = ActiveMask::all())
    {
        return execute(inst, 0, mask, cta_, gmem_, launch_);
    }

    Instruction
    alu(Opcode op, RegIndex dst, RegIndex a, RegIndex b)
    {
        Instruction i;
        i.op = op;
        i.dst = dst;
        i.src[0] = a;
        i.src[1] = b;
        return i;
    }

    void
    setAllLanes(RegIndex reg, std::uint32_t value)
    {
        for (std::uint32_t t = 0; t < 64; ++t)
            cta_.writeReg(t, reg, value);
    }

    void
    setLane(std::uint32_t lane, RegIndex reg, std::uint32_t value)
    {
        cta_.writeReg(lane, reg, value);
    }

    GlobalMemory gmem_;
    CtaFuncState cta_;
    LaunchParams launch_;
};

TEST_F(FuncTest, IntegerArithmetic)
{
    setAllLanes(0, 10);
    setAllLanes(1, 3);
    run(alu(Opcode::IADD, 2, 0, 1));
    EXPECT_EQ(cta_.readReg(0, 2), 13u);
    run(alu(Opcode::ISUB, 2, 0, 1));
    EXPECT_EQ(cta_.readReg(0, 2), 7u);
    run(alu(Opcode::IMUL, 2, 0, 1));
    EXPECT_EQ(cta_.readReg(0, 2), 30u);
    run(alu(Opcode::AND, 2, 0, 1));
    EXPECT_EQ(cta_.readReg(0, 2), 2u);
    run(alu(Opcode::OR, 2, 0, 1));
    EXPECT_EQ(cta_.readReg(0, 2), 11u);
    run(alu(Opcode::XOR, 2, 0, 1));
    EXPECT_EQ(cta_.readReg(0, 2), 9u);
    run(alu(Opcode::SHL, 2, 0, 1));
    EXPECT_EQ(cta_.readReg(0, 2), 80u);
    run(alu(Opcode::SHR, 2, 0, 1));
    EXPECT_EQ(cta_.readReg(0, 2), 1u);
}

TEST_F(FuncTest, SignedMinMaxDivRem)
{
    setAllLanes(0, static_cast<std::uint32_t>(-9));
    setAllLanes(1, 4);
    run(alu(Opcode::IMIN, 2, 0, 1));
    EXPECT_EQ(static_cast<std::int32_t>(cta_.readReg(0, 2)), -9);
    run(alu(Opcode::IMAX, 2, 0, 1));
    EXPECT_EQ(static_cast<std::int32_t>(cta_.readReg(0, 2)), 4);
    run(alu(Opcode::IDIV, 2, 0, 1));
    EXPECT_EQ(static_cast<std::int32_t>(cta_.readReg(0, 2)), -2);
    run(alu(Opcode::IREM, 2, 0, 1));
    EXPECT_EQ(static_cast<std::int32_t>(cta_.readReg(0, 2)), -1);
}

TEST_F(FuncTest, DivideByZeroYieldsZero)
{
    setAllLanes(0, 7);
    setAllLanes(1, 0);
    run(alu(Opcode::IDIV, 2, 0, 1));
    EXPECT_EQ(cta_.readReg(0, 2), 0u);
    run(alu(Opcode::IREM, 2, 0, 1));
    EXPECT_EQ(cta_.readReg(0, 2), 0u);
}

TEST_F(FuncTest, ImmediateOperand)
{
    setAllLanes(0, 5);
    Instruction i = alu(Opcode::IADD, 1, 0, noReg);
    i.src[1] = noReg;
    i.useImm = true;
    i.imm = -2;
    run(i);
    EXPECT_EQ(cta_.readReg(0, 1), 3u);
}

TEST_F(FuncTest, MadForms)
{
    setAllLanes(0, 3);
    setAllLanes(1, 4);
    setAllLanes(2, 5);
    Instruction i = alu(Opcode::IMAD, 3, 0, 1);
    i.src[2] = 2;
    run(i);
    EXPECT_EQ(cta_.readReg(0, 3), 17u);
}

TEST_F(FuncTest, FloatArithmetic)
{
    setAllLanes(0, std::bit_cast<std::uint32_t>(1.5f));
    setAllLanes(1, std::bit_cast<std::uint32_t>(2.0f));
    run(alu(Opcode::FADD, 2, 0, 1));
    EXPECT_EQ(std::bit_cast<float>(cta_.readReg(0, 2)), 3.5f);
    run(alu(Opcode::FSUB, 2, 0, 1));
    EXPECT_EQ(std::bit_cast<float>(cta_.readReg(0, 2)), -0.5f);
    run(alu(Opcode::FMUL, 2, 0, 1));
    EXPECT_EQ(std::bit_cast<float>(cta_.readReg(0, 2)), 3.0f);
    run(alu(Opcode::FMIN, 2, 0, 1));
    EXPECT_EQ(std::bit_cast<float>(cta_.readReg(0, 2)), 1.5f);
    run(alu(Opcode::FMAX, 2, 0, 1));
    EXPECT_EQ(std::bit_cast<float>(cta_.readReg(0, 2)), 2.0f);
}

TEST_F(FuncTest, FloatUnary)
{
    setAllLanes(0, std::bit_cast<std::uint32_t>(4.0f));
    Instruction i;
    i.op = Opcode::FSQRT;
    i.dst = 1;
    i.src[0] = 0;
    run(i);
    EXPECT_EQ(std::bit_cast<float>(cta_.readReg(0, 1)), 2.0f);
    i.op = Opcode::FRCP;
    run(i);
    EXPECT_EQ(std::bit_cast<float>(cta_.readReg(0, 1)), 0.25f);
    i.op = Opcode::FEXP;
    run(i);
    EXPECT_EQ(std::bit_cast<float>(cta_.readReg(0, 1)), std::exp(4.0f));
    i.op = Opcode::FLOG;
    run(i);
    EXPECT_EQ(std::bit_cast<float>(cta_.readReg(0, 1)), std::log(4.0f));
}

TEST_F(FuncTest, FlogOfNonPositiveIsZero)
{
    setAllLanes(0, std::bit_cast<std::uint32_t>(-1.0f));
    Instruction i;
    i.op = Opcode::FLOG;
    i.dst = 1;
    i.src[0] = 0;
    run(i);
    EXPECT_EQ(cta_.readReg(0, 1), 0u);
}

TEST_F(FuncTest, Conversions)
{
    setAllLanes(0, static_cast<std::uint32_t>(-3));
    Instruction i;
    i.op = Opcode::I2F;
    i.dst = 1;
    i.src[0] = 0;
    run(i);
    EXPECT_EQ(std::bit_cast<float>(cta_.readReg(0, 1)), -3.0f);
    setAllLanes(0, std::bit_cast<std::uint32_t>(-2.7f));
    i.op = Opcode::F2I;
    run(i);
    EXPECT_EQ(static_cast<std::int32_t>(cta_.readReg(0, 1)), -2);
}

TEST_F(FuncTest, ComparesAndSelect)
{
    setAllLanes(0, static_cast<std::uint32_t>(-1)); // signed -1
    setAllLanes(1, 1);
    Instruction i = alu(Opcode::ISETP, 2, 0, 1);
    i.cmp = CmpOp::LT;
    run(i);
    EXPECT_EQ(cta_.readReg(0, 2), 1u); // -1 < 1 signed
    i.cmp = CmpOp::GT;
    run(i);
    EXPECT_EQ(cta_.readReg(0, 2), 0u);

    setAllLanes(3, 77);
    setAllLanes(4, 88);
    setAllLanes(5, 0);
    Instruction s = alu(Opcode::SEL, 6, 3, 4);
    s.src[2] = 5;
    run(s);
    EXPECT_EQ(cta_.readReg(0, 6), 88u); // cond == 0 -> second
    setAllLanes(5, 1);
    run(s);
    EXPECT_EQ(cta_.readReg(0, 6), 77u);
}

TEST_F(FuncTest, SpecialRegisters)
{
    Instruction i;
    i.op = Opcode::S2R;
    i.dst = 0;
    i.sreg = SpecialReg::TidX;
    run(i);
    EXPECT_EQ(cta_.readReg(0, 0), 0u);
    EXPECT_EQ(cta_.readReg(31, 0), 31u);

    i.sreg = SpecialReg::CtaIdX;
    run(i);
    EXPECT_EQ(cta_.readReg(5, 0), 3u);

    i.sreg = SpecialReg::NTidX;
    run(i);
    EXPECT_EQ(cta_.readReg(5, 0), 64u);

    i.sreg = SpecialReg::NCtaIdY;
    run(i);
    EXPECT_EQ(cta_.readReg(5, 0), 2u);

    i.sreg = SpecialReg::LaneId;
    run(i);
    EXPECT_EQ(cta_.readReg(7, 0), 7u);

    i.sreg = SpecialReg::WarpIdInCta;
    execute(i, 1, ActiveMask::all(), cta_, gmem_, launch_);
    EXPECT_EQ(cta_.readReg(32 + 3, 0), 1u);
}

TEST_F(FuncTest, MultiDimTid)
{
    LaunchParams lp;
    lp.grid = Dim3(2, 2);
    lp.cta = Dim3(8, 4, 2); // 64 threads
    lp.params = {};
    CtaFuncState c2;
    c2.init(0, Dim3(1, 1, 0), 64, 4, 0);
    Instruction i;
    i.op = Opcode::S2R;
    i.dst = 0;
    i.sreg = SpecialReg::TidY;
    execute(i, 0, ActiveMask::all(), c2, gmem_, lp);
    // thread 13 = (x=5, y=1, z=0)
    EXPECT_EQ(c2.readReg(13, 0), 1u);
    i.sreg = SpecialReg::TidZ;
    execute(i, 1, ActiveMask::all(), c2, gmem_, lp);
    // thread 40 = (x=0, y=1, z=1)
    EXPECT_EQ(c2.readReg(40, 0), 1u);
}

TEST_F(FuncTest, LoadParam)
{
    Instruction i;
    i.op = Opcode::LDP;
    i.dst = 0;
    i.useImm = true;
    i.imm = 1;
    run(i);
    EXPECT_EQ(cta_.readReg(0, 0), 222u);
}

TEST_F(FuncTest, GlobalLoadStoreAndAccessList)
{
    setAllLanes(0, 0x2000);
    gmem_.write32(0x2000, 0xdeadbeef);
    Instruction ld;
    ld.op = Opcode::LDG;
    ld.dst = 1;
    ld.src[0] = 0;
    ld.imm = 0;
    auto res = run(ld);
    EXPECT_EQ(cta_.readReg(0, 1), 0xdeadbeefu);
    EXPECT_EQ(res.globalAccesses.size(), warpSize);
    EXPECT_EQ(res.globalAccesses[0].addr, 0x2000u);

    setAllLanes(2, 0x12345678);
    Instruction st;
    st.op = Opcode::STG;
    st.src[0] = 0;
    st.src[1] = 2;
    st.imm = 16;
    res = run(st);
    EXPECT_EQ(gmem_.read32(0x2010), 0x12345678u);
    EXPECT_EQ(res.globalAccesses.size(), warpSize);
}

TEST_F(FuncTest, AtomicAddReturnsOldAndSerialises)
{
    gmem_.write32(0x3000, 100);
    setAllLanes(0, 0x3000);
    setAllLanes(1, 1);
    Instruction at;
    at.op = Opcode::ATOMG_ADD;
    at.dst = 2;
    at.src[0] = 0;
    at.src[1] = 1;
    run(at);
    // Lanes apply in lane order: lane i sees old value 100 + i.
    EXPECT_EQ(cta_.readReg(0, 2), 100u);
    EXPECT_EQ(cta_.readReg(31, 2), 131u);
    EXPECT_EQ(gmem_.read32(0x3000), 132u);
}

TEST_F(FuncTest, SharedLoadStore)
{
    setAllLanes(0, 8); // byte address in shared
    setAllLanes(1, 0xabcd);
    Instruction st;
    st.op = Opcode::STS;
    st.src[0] = 0;
    st.src[1] = 1;
    run(st);
    EXPECT_EQ(cta_.readShared32(8), 0xabcdu);

    Instruction ld;
    ld.op = Opcode::LDS;
    ld.dst = 2;
    ld.src[0] = 0;
    auto res = run(ld);
    EXPECT_EQ(cta_.readReg(0, 2), 0xabcdu);
    EXPECT_EQ(res.sharedAccesses.size(), warpSize);
}

TEST_F(FuncTest, OutOfRangeSharedIsBenign)
{
    setAllLanes(0, 100000); // way past the 256-byte allocation
    Instruction ld;
    ld.op = Opcode::LDS;
    ld.dst = 1;
    ld.src[0] = 0;
    EXPECT_NO_THROW(run(ld));
    EXPECT_EQ(cta_.readReg(0, 1), 0u);
}

TEST_F(FuncTest, BranchTakenMask)
{
    for (std::uint32_t lane = 0; lane < warpSize; ++lane)
        setLane(lane, 0, lane % 2);
    Instruction br;
    br.op = Opcode::BRA;
    br.src[0] = 0;
    br.branchTarget = 5;
    br.reconvergePc = 5;
    const auto res = run(br);
    EXPECT_EQ(res.branchTaken.count(), warpSize / 2);
    EXPECT_FALSE(res.branchTaken.test(0));
    EXPECT_TRUE(res.branchTaken.test(1));
}

TEST_F(FuncTest, UnconditionalBranchTakesAllActiveLanes)
{
    Instruction br;
    br.op = Opcode::BRA;
    br.branchTarget = 5;
    br.reconvergePc = 5;
    const auto res = run(br, ActiveMask::firstLanes(10));
    EXPECT_EQ(res.branchTaken.count(), 10u);
}

TEST_F(FuncTest, InactiveLanesUntouched)
{
    setAllLanes(0, 1);
    setAllLanes(1, 99);
    Instruction i = alu(Opcode::IADD, 1, 0, 0);
    run(i, ActiveMask::firstLanes(4));
    EXPECT_EQ(cta_.readReg(3, 1), 2u);
    EXPECT_EQ(cta_.readReg(4, 1), 99u); // lane 4 inactive
}

TEST_F(FuncTest, TailWarpLanesBeyondCtaIgnored)
{
    CtaFuncState small;
    small.init(0, Dim3(0, 0, 0), 40, 4, 0); // warp 1 has 8 live threads
    for (std::uint32_t t = 0; t < 40; ++t)
        small.writeReg(t, 0, 7);
    Instruction i = alu(Opcode::IADD, 1, 0, 0);
    const auto res = execute(i, 1, ActiveMask::all(), small, gmem_,
                             launch_);
    (void)res;
    EXPECT_EQ(small.readReg(39, 1), 14u); // last live thread computed
}

} // namespace
} // namespace vtsim
