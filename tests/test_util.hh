/**
 * @file
 * Shared helpers for the vtsim test suite.
 */

#ifndef VTSIM_TESTS_TEST_UTIL_HH
#define VTSIM_TESTS_TEST_UTIL_HH

#include <string>

#include "config/gpu_config.hh"
#include "gpu/gpu.hh"
#include "isa/assembler.hh"
#include "isa/kernel_builder.hh"

namespace vtsim::test {

/** A small but multi-SM config for fast integration tests. */
inline GpuConfig
smallConfig()
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.numSms = 2;
    cfg.numMemPartitions = 2;
    cfg.maxCycles = 5'000'000;
    return cfg;
}

/** smallConfig with Virtual Thread enabled. */
inline GpuConfig
smallVtConfig()
{
    GpuConfig cfg = smallConfig();
    cfg.vtEnabled = true;
    return cfg;
}

/**
 * Kernel that writes a constant to out[gid] for gid < n.
 * Params: 0 = out base, 1 = n, 2 = value.
 */
inline Kernel
storeConstKernel()
{
    return assemble(R"(
.kernel store_const
    ldp r0, 0
    ldp r1, 1
    ldp r2, 2
    s2r r3, ctaid.x
    s2r r4, ntid.x
    s2r r5, tid.x
    imad r6, r3, r4, r5
    isetp.ge r7, r6, r1
    bra r7, done
    shl r8, r6, 2
    iadd r8, r8, r0
    stg [r8], r2
done:
    exit
)");
}

/**
 * Kernel computing out[gid] = in[gid] * 3 + 7 (integers).
 * Params: 0 = in, 1 = out, 2 = n.
 */
inline Kernel
mul3Add7Kernel()
{
    return assemble(R"(
.kernel mul3add7
    ldp r0, 0
    ldp r1, 1
    ldp r2, 2
    s2r r3, ctaid.x
    s2r r4, ntid.x
    s2r r5, tid.x
    imad r6, r3, r4, r5
    isetp.ge r7, r6, r2
    bra r7, done
    shl r8, r6, 2
    iadd r9, r8, r0
    ldg r10, [r9]
    imul r10, r10, 3
    iadd r10, r10, 7
    iadd r11, r8, r1
    stg [r11], r10
done:
    exit
)");
}

} // namespace vtsim::test

#endif // VTSIM_TESTS_TEST_UTIL_HH
