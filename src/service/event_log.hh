/**
 * @file
 * Structured job-lifecycle event log (schema "vtsim-evlog-v1").
 *
 * One JSON object per line, appended and flushed atomically under an
 * internal mutex, so the log is a crash-tolerant stream: a daemon
 * killed mid-write loses at most the final partial line, and a reader
 * that tolerates one truncated tail line (scripts/validate_evlog.py
 * does) sees every completed event.
 *
 * Every line carries:
 *
 *   v       "vtsim-evlog-v1"
 *   seq     per-daemon sequence number, starts at 1, increments by 1
 *           in file order (the write lock covers allocation AND the
 *           write, so file order == seq order)
 *   t_ms    milliseconds since the log was opened (steady clock,
 *           microsecond resolution) — differences between events are
 *           exact durations
 *   event   the event kind (see below)
 *
 * Job-scoped events additionally carry:
 *
 *   job     the job id
 *   parent  seq of this job's previous event (0 for its first), so a
 *           job's full history is a filterable linked chain
 *
 * Event kinds and their extra fields (service.cc and the fabric
 * coordinator are the writers; scripts/validate_evlog.py mirrors this
 * table check for check):
 *
 *   log_open       pid
 *   service_start  workers, queue_limit, preempt_every
 *   listening      socket                  (daemon bound its socket)
 *   accept_error   error                   (transient accept(2) fail)
 *   submit         workload, scale, priority       (admission attempt)
 *   admit          job, workload, scale, priority  (parent = submit)
 *   reject         reason                          (parent = submit)
 *   start          job, worker, attempt, wait_ms   (fresh/retry start)
 *   resume         job, worker, wait_ms            (pop of parked job)
 *   checkpoint     job, bytes, write_ms            (parked image)
 *   preempt        job, by_priority        (preemption signalled)
 *   park           job, slice_ms           (run slice ended preempted)
 *   crash          job, attempt, reason
 *   retry          job, from ("checkpoint"|"scratch")
 *   finish         job, cycles, wall_ms, verified
 *   fail           job, reason
 *   cancel         job
 *   yank           job, image, ckpt_bytes  (coordinator stole the job)
 *   drain          (shutdown began)
 *   service_stop   (all workers joined)
 *
 * Coordinator-scoped kinds (written by fabric/coordinator.cc into its
 * own log; job ids there are fabric-global):
 *
 *   coord_start    listen
 *   register       node, addr, workers
 *   node_lost      node, requeued
 *   dispatch       job, node, local_job
 *   steal          job, from, to
 *   migrate        job, from, to, bytes
 *   throttle       tenant, reason, retry_after_ms
 */

#ifndef VTSIM_SERVICE_EVENT_LOG_HH
#define VTSIM_SERVICE_EVENT_LOG_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "service/json.hh"

namespace vtsim::service {

class EventLog
{
  public:
    /** Opens (truncates) @p path and emits log_open; throws FatalError
     * when the file cannot be created. */
    explicit EventLog(const std::string &path);

    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /**
     * Append one event line; @p fields must not contain the reserved
     * keys (v, seq, t_ms, event). Returns the event's seq.
     */
    std::uint64_t emit(const char *event, Json::Object fields = {});

    /**
     * Append a job-scoped event: emit() with "job" and "parent" added.
     * @p parent is the seq returned by the job's previous event (0 for
     * the first).
     */
    std::uint64_t emitJob(const char *event, std::uint64_t job,
                          std::uint64_t parent, Json::Object fields = {});

    /** Milliseconds since the log was opened (what t_ms measures). */
    double elapsedMs() const;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::chrono::steady_clock::time_point opened_;
    std::mutex mu_;
    std::ofstream os_;
    std::uint64_t nextSeq_ = 1;
};

} // namespace vtsim::service

#endif // VTSIM_SERVICE_EVENT_LOG_HH
