/**
 * @file
 * Debug tracing in the gem5 DPRINTF idiom: category-flagged, per-cycle
 * event lines, written to a caller-supplied stream, and free when
 * disabled (a single mask test guards all formatting).
 *
 * THREADING: one simulated Gpu is single-threaded, so the sink is a
 * process-global registry (as in gem5) and is deliberately
 * unsynchronized; tests swap the stream in and out around the region
 * they observe. The parallel experiment runner (bench/parallel_runner)
 * fans hermetic Gpus across a thread pool, where a shared global sink
 * would interleave lines and race — so the runner refuses to fan out
 * while any flag is enabled (anyEnabled()) and falls back to one job.
 * Telemetry sinks that must compose with the pool — the Perfetto
 * exporter in telemetry/trace_json.hh and the interval sampler — are
 * per-Gpu objects instead of going through this facade.
 */

#ifndef VTSIM_COMMON_TRACE_HH
#define VTSIM_COMMON_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "common/log.hh"
#include "common/types.hh"

namespace vtsim {

/** Trace categories; combine with '|'. */
enum class TraceFlag : std::uint32_t
{
    None = 0,
    Issue = 1u << 0, ///< Warp instruction issue.
    Mem = 1u << 1,   ///< LDST transactions and completions.
    Swap = 1u << 2,  ///< Virtual Thread state transitions.
    Cta = 1u << 3,   ///< CTA admission/retirement.
    Dram = 1u << 4,  ///< DRAM command scheduling.
    Barrier = 1u << 5, ///< Barrier releases.
    All = 0xffffffffu,
};

constexpr TraceFlag
operator|(TraceFlag a, TraceFlag b)
{
    return static_cast<TraceFlag>(static_cast<std::uint32_t>(a) |
                                  static_cast<std::uint32_t>(b));
}

class Trace
{
  public:
    /** The process-global trace sink. */
    static Trace &instance();

    /** Route events matching @p flags to @p os (null disables). */
    void enable(TraceFlag flags, std::ostream *os);

    /** Turn everything off. */
    void disable() { enable(TraceFlag::None, nullptr); }

    bool
    enabled(TraceFlag flag) const
    {
        return (mask_ & static_cast<std::uint32_t>(flag)) != 0 &&
               out_ != nullptr;
    }

    /** Any category routed anywhere? (The parallel runner's single-job
     *  guard — see the threading note in the file comment.) */
    bool anyEnabled() const { return mask_ != 0 && out_ != nullptr; }

    /** Emit one event line: "<cycle>: <component>: <message>". */
    void log(TraceFlag flag, Cycle cycle, const std::string &component,
             const std::string &message);

    /** Parse a comma-separated flag list ("issue,swap"); throws
     *  FatalError on an unknown name. "all" enables everything. */
    static TraceFlag parseFlags(const std::string &list);

  private:
    Trace() = default;

    std::uint32_t mask_ = 0;
    std::ostream *out_ = nullptr;
};

} // namespace vtsim

/**
 * Emit a trace event; all argument evaluation is skipped when the flag
 * is disabled.
 */
#define VTSIM_TRACE(flag, cycle, component, ...)                             \
    do {                                                                     \
        if (::vtsim::Trace::instance().enabled(flag)) {                      \
            ::vtsim::Trace::instance().log(                                  \
                flag, cycle, component,                                      \
                ::vtsim::detail::concat(__VA_ARGS__));                       \
        }                                                                    \
    } while (0)

#endif // VTSIM_COMMON_TRACE_HH
