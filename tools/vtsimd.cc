/**
 * @file
 * vtsimd — the simulation-job service daemon. Binds a Unix-domain
 * socket, accepts NDJSON job requests (src/service/protocol.hh) and
 * schedules them onto a preemptive worker pool (src/service/service.hh).
 *
 * Usage:
 *   vtsimd [--socket PATH] [--workers N] [--queue-limit N]
 *          [--preempt-every CYCLES] [--spool DIR] [--stats-json PATH]
 *          [--max-sim-threads N] [--evlog PATH] [--metrics-file PATH]
 *          [--job-trace PATH] [--log-level LEVEL]
 *          [--listen-tcp [HOST:]PORT] [--token SECRET]
 *          [--node NAME --coordinator HOST:PORT [--advertise HOST:PORT]]
 *
 *   --socket PATH         listen here (default ./vtsimd.sock)
 *   --workers N           concurrent simulations (default 2)
 *   --queue-limit N       admission bound; beyond it submits get
 *                         rejected:queue_full (default 64)
 *   --preempt-every N     default checkpoint/preemption cadence in
 *                         cycles for jobs that don't set their own;
 *                         0 disables preemption (default 25000)
 *   --spool DIR           parked checkpoint images (default
 *                         ./vtsimd-spool)
 *   --stats-json PATH     on shutdown, write completed runs plus the
 *                         service telemetry as vtsim-stats-v1 JSON
 *   --max-sim-threads N   largest per-job "sim_threads" shard request
 *                         admitted; bigger asks are rejected at submit
 *                         (default 4)
 *   --evlog PATH          vtsim-evlog-v1 JSONL lifecycle event log
 *                         (src/service/event_log.hh)
 *   --metrics-file PATH   Prometheus text of the service registry,
 *                         rewritten atomically (temp + rename) every
 *                         ~500 ms and once more at shutdown; the same
 *                         payload the "metrics" op returns
 *   --job-trace PATH      Perfetto trace of job lifecycles: worker run
 *                         slices and per-job phase spans
 *   --log-level LEVEL     stderr verbosity: debug|info|warn|error|off
 *                         (default info; VTSIM_LOG_LEVEL also works)
 *   --listen-tcp [HOST:]PORT
 *                         additionally listen on TCP (the fabric
 *                         transport); PORT 0 binds an ephemeral port,
 *                         printed at startup. HOST defaults to
 *                         127.0.0.1
 *   --token SECRET        bearer token required on every request line
 *                         (both listeners); the fleet-wide secret
 *   --node NAME           this daemon's fabric name; with
 *                         --coordinator, a node agent registers NAME
 *                         at the coordinator and heartbeats load
 *   --coordinator HOST:PORT
 *                         the vtsim-coord endpoint to join
 *   --advertise HOST:PORT the dial-back address the coordinator should
 *                         use (default 127.0.0.1:<bound TCP port>)
 *
 * The daemon exits after a client's "shutdown" op (draining every
 * admitted job first) or on SIGINT/SIGTERM.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/logger.hh"
#include "fabric/node_agent.hh"
#include "fabric/transport.hh"
#include "service/daemon.hh"
#include "service/service.hh"
#include "service/stats_json.hh"

namespace {

vtsim::service::Daemon *g_daemon = nullptr;

void
onSignal(int)
{
    // requestStop only touches an atomic and shutdown(2) — both
    // async-signal-safe.
    if (g_daemon)
        g_daemon->requestStop();
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: vtsimd [--socket PATH] [--workers N] "
                 "[--queue-limit N]\n"
                 "              [--preempt-every CYCLES] [--spool DIR] "
                 "[--stats-json PATH]\n"
                 "              [--max-sim-threads N] [--evlog PATH]\n"
                 "              [--metrics-file PATH] [--job-trace "
                 "PATH]\n"
                 "              [--log-level "
                 "debug|info|warn|error|off]\n"
                 "              [--listen-tcp [HOST:]PORT] [--token "
                 "SECRET]\n"
                 "              [--node NAME --coordinator HOST:PORT "
                 "[--advertise HOST:PORT]]\n");
    std::exit(2);
}

unsigned long long
parseCount(const char *text, const char *what)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "vtsimd: invalid %s '%s'\n", what, text);
        std::exit(2);
    }
    return n;
}

/** Atomically replace @p path with @p body (temp file + rename), so a
 *  scraper never reads a half-written snapshot. */
bool
writeFileAtomic(const std::string &path, const std::string &body)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        os << body;
        os.flush();
        if (!os)
            return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    return !ec;
}

/**
 * Background Prometheus exporter: rewrites the metrics file every
 * ~500 ms while the daemon serves, plus a final snapshot from the
 * destructor after the drain — the file always ends at the terminal
 * counters.
 */
class MetricsFileWriter
{
  public:
    MetricsFileWriter(vtsim::service::JobService &service,
                      std::string path)
        : service_(service), path_(std::move(path))
    {
        if (path_.empty())
            return;
        thread_ = std::thread([this] { run(); });
    }

    ~MetricsFileWriter()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
        writeOnce(); // Final post-drain snapshot.
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lk(mu_);
        while (!stop_) {
            lk.unlock();
            writeOnce();
            lk.lock();
            cv_.wait_for(lk, std::chrono::milliseconds(500),
                         [this] { return stop_; });
        }
    }

    void
    writeOnce()
    {
        if (!writeFileAtomic(path_, service_.metricsText())) {
            vtsim::logging::warn("vtsimd",
                                 "cannot write metrics file '", path_,
                                 "'");
        }
    }

    vtsim::service::JobService &service_;
    std::string path_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace vtsim::service;
    namespace logging = vtsim::logging;

    std::string socket_path = "vtsimd.sock";
    std::string stats_json_path;
    std::string metrics_file_path;
    std::string listen_tcp;
    std::string auth_token;
    std::string node_name;
    std::string coordinator_addr;
    std::string advertise_addr;
    ServiceConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--socket")
            socket_path = value();
        else if (arg == "--workers")
            config.workers = unsigned(parseCount(value(), "--workers"));
        else if (arg == "--queue-limit")
            config.queueLimit =
                std::size_t(parseCount(value(), "--queue-limit"));
        else if (arg == "--preempt-every")
            config.preemptEvery = parseCount(value(), "--preempt-every");
        else if (arg == "--spool")
            config.spoolDir = value();
        else if (arg == "--max-sim-threads")
            config.maxSimThreads =
                unsigned(parseCount(value(), "--max-sim-threads"));
        else if (arg == "--stats-json")
            stats_json_path = value();
        else if (arg == "--evlog")
            config.eventLogPath = value();
        else if (arg == "--metrics-file")
            metrics_file_path = value();
        else if (arg == "--job-trace")
            config.jobTracePath = value();
        else if (arg == "--listen-tcp")
            listen_tcp = value();
        else if (arg == "--token")
            auth_token = value();
        else if (arg == "--node")
            node_name = value();
        else if (arg == "--coordinator")
            coordinator_addr = value();
        else if (arg == "--advertise")
            advertise_addr = value();
        else if (arg == "--log-level") {
            try {
                logging::setLevel(logging::parseLevel(value()));
            } catch (const std::exception &e) {
                std::fprintf(stderr, "vtsimd: %s\n", e.what());
                return 2;
            }
        } else
            usage();
    }
    if (config.workers < 1) {
        std::fprintf(stderr, "vtsimd: --workers must be >= 1\n");
        return 2;
    }
    if (!coordinator_addr.empty() &&
        (node_name.empty() || listen_tcp.empty())) {
        std::fprintf(stderr, "vtsimd: --coordinator needs --node and "
                             "--listen-tcp\n");
        return 2;
    }

    try {
        const auto started = std::chrono::steady_clock::now();
        JobService service(config);

        DaemonConfig daemon_config;
        daemon_config.socketPath = socket_path;
        daemon_config.authToken = auth_token;
        if (!listen_tcp.empty()) {
            // Bare "PORT" means loopback; "HOST:PORT" binds that host.
            const std::string spec =
                listen_tcp.find(':') == std::string::npos
                    ? "127.0.0.1:" + listen_tcp
                    : listen_tcp;
            daemon_config.tcp = vtsim::fabric::parseHostPort(spec);
            daemon_config.tcpEnabled = true;
        }
        Daemon daemon(service, daemon_config);
        daemon.start();
        g_daemon = &daemon;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::signal(SIGPIPE, SIG_IGN);

        logging::info("vtsimd", "listening on ", socket_path, " (",
                      config.workers, " workers, queue limit ",
                      config.queueLimit, ", preempt every ",
                      config.preemptEvery, " cycles)");
        if (daemon_config.tcpEnabled) {
            logging::info("vtsimd", "TCP listener on ",
                          daemon_config.tcp.host, ":",
                          daemon.boundTcpPort(),
                          auth_token.empty() ? " (no token)"
                                             : " (token auth)");
        }
        {
            std::unique_ptr<vtsim::fabric::NodeAgent> agent;
            if (!coordinator_addr.empty()) {
                vtsim::fabric::NodeAgentConfig agent_config;
                agent_config.node = node_name;
                agent_config.coordinator =
                    vtsim::fabric::parseHostPort(coordinator_addr);
                agent_config.advertise =
                    advertise_addr.empty()
                        ? vtsim::fabric::HostPort{"127.0.0.1",
                                                  daemon.boundTcpPort()}
                        : vtsim::fabric::parseHostPort(advertise_addr);
                agent_config.token = auth_token;
                agent = std::make_unique<vtsim::fabric::NodeAgent>(
                    service, agent_config);
                agent->start();
            }
            MetricsFileWriter metrics(service, metrics_file_path);
            daemon.serve();

            if (agent)
                agent->stop(); // Stop heartbeating before the drain.
            logging::info("vtsimd", "draining...");
            service.shutdown();
            // MetricsFileWriter's destructor writes the post-drain
            // snapshot here.
        }
        g_daemon = nullptr;

        if (!stats_json_path.empty()) {
            std::ofstream os(stats_json_path);
            if (!os) {
                logging::error("vtsimd",
                               "cannot open stats-json file '",
                               stats_json_path, "'");
                return 1;
            }
            const Json section = service.statsJsonSection();
            const auto runs = service.completedRuns();
            BatchMeta meta;
            meta.wallMs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - started)
                    .count() *
                1e3;
            std::uint64_t cycles = 0;
            std::uint64_t thread_instructions = 0;
            for (const RunRecord &r : runs) {
                cycles += r.stats.cycles;
                thread_instructions += r.stats.threadInstructions;
            }
            if (meta.wallMs > 0.0) {
                meta.kcyclesPerSec =
                    double(cycles) / (meta.wallMs / 1e3) / 1e3;
                meta.mips = double(thread_instructions) /
                            (meta.wallMs / 1e3) / 1e6;
            }
            writeStatsJson(os, runs, &section, meta);
            logging::info("vtsimd", "wrote ", stats_json_path);
        }
    } catch (const std::exception &e) {
        logging::error("vtsimd", e.what());
        return 1;
    }
    return 0;
}
