#include "service/protocol.hh"

#include <limits>

namespace vtsim::service {

namespace {

std::uint64_t
requireUnsigned(const Json &v, const char *what, std::uint64_t max)
{
    std::int64_t raw;
    try {
        raw = v.asInt();
    } catch (const JsonError &) {
        throw ProtocolError(std::string(what) + " must be an integer");
    }
    if (raw < 0 || std::uint64_t(raw) > max) {
        throw ProtocolError(std::string(what) + " out of range [0, " +
                            std::to_string(max) + "]");
    }
    return std::uint64_t(raw);
}

bool
requireBool(const Json &v, const char *what)
{
    try {
        return v.asBool();
    } catch (const JsonError &) {
        throw ProtocolError(std::string(what) + " must be a boolean");
    }
}

} // namespace

std::string
toString(Priority p)
{
    switch (p) {
      case Priority::Low: return "low";
      case Priority::Normal: return "normal";
      case Priority::High: return "high";
    }
    return "?";
}

std::string
toString(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Parked: return "parked";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
      case JobState::Migrated: return "migrated";
    }
    return "?";
}

Priority
parsePriority(const std::string &name)
{
    if (name == "low")
        return Priority::Low;
    if (name == "normal")
        return Priority::Normal;
    if (name == "high")
        return Priority::High;
    throw ProtocolError("unknown priority '" + name +
                        "' (expected low|normal|high)");
}

void
applyConfigOverrides(GpuConfig &cfg, const Json &overrides)
{
    if (!overrides.isObject())
        throw ProtocolError("config must be an object");
    for (const auto &[key, value] : overrides.asObject()) {
        if (key == "num_sms") {
            cfg.numSms = requireUnsigned(value, "num_sms", 256);
        } else if (key == "num_mem_partitions") {
            cfg.numMemPartitions =
                requireUnsigned(value, "num_mem_partitions", 64);
        } else if (key == "vt_enabled") {
            cfg.vtEnabled = requireBool(value, "vt_enabled");
        } else if (key == "vt_max_virtual_ctas_per_sm") {
            cfg.vtMaxVirtualCtasPerSm = requireUnsigned(
                value, "vt_max_virtual_ctas_per_sm", 1024);
        } else if (key == "vt_swap_latency") {
            const auto lat =
                requireUnsigned(value, "vt_swap_latency", 1u << 20);
            cfg.vtSwapOutLatency = lat;
            cfg.vtSwapInLatency = lat;
        } else if (key == "throttle_enabled") {
            cfg.throttleEnabled = requireBool(value, "throttle_enabled");
        } else if (key == "scheduler") {
            std::string name;
            try {
                name = value.asString();
            } catch (const JsonError &) {
                throw ProtocolError("scheduler must be a string");
            }
            if (name == "lrr")
                cfg.schedulerPolicy = SchedulerPolicy::LooseRoundRobin;
            else if (name == "gto")
                cfg.schedulerPolicy = SchedulerPolicy::GreedyThenOldest;
            else if (name == "two-level")
                cfg.schedulerPolicy = SchedulerPolicy::TwoLevel;
            else
                throw ProtocolError("unknown scheduler '" + name + "'");
        } else if (key == "l1_bypass_global_loads") {
            cfg.l1BypassGlobalLoads =
                requireBool(value, "l1_bypass_global_loads");
        } else if (key == "sched_limit_multiplier") {
            cfg.schedLimitMultiplier =
                requireUnsigned(value, "sched_limit_multiplier", 64);
        } else if (key == "fast_forward") {
            cfg.fastForwardEnabled = requireBool(value, "fast_forward");
        } else if (key == "max_cycles") {
            cfg.maxCycles = requireUnsigned(
                value, "max_cycles",
                std::numeric_limits<std::int64_t>::max());
        } else {
            throw ProtocolError("unknown config key '" + key + "'");
        }
    }
}

Request
parseRequest(const std::string &line)
{
    const Json doc = Json::parse(line);
    if (!doc.isObject())
        throw ProtocolError("request must be a JSON object");
    const Json *op = doc.find("op");
    if (!op || !op->isString())
        throw ProtocolError("request needs a string \"op\"");

    Request req;
    const std::string &name = op->asString();
    if (name == "submit") {
        req.op = Request::Op::Submit;
        const Json *workload = doc.find("workload");
        const Json *kernels = doc.find("kernels");
        if (workload && kernels) {
            throw ProtocolError(
                "submit takes \"workload\" or \"kernels\", not both");
        }
        if (kernels) {
            if (!kernels->isArray() || kernels->asArray().empty())
                throw ProtocolError(
                    "kernels must be a non-empty array of workload names");
            for (const Json &k : kernels->asArray()) {
                if (!k.isString())
                    throw ProtocolError("kernels entries must be strings");
                req.spec.kernels.push_back(k.asString());
            }
            req.spec.workload = req.spec.kernels.front();
        } else if (workload && workload->isString()) {
            req.spec.workload = workload->asString();
        } else {
            throw ProtocolError("submit needs a string \"workload\" or "
                                "a \"kernels\" array");
        }
        if (const Json *policy = doc.find("share_policy")) {
            if (!policy->isString() ||
                !parseSharePolicy(policy->asString(),
                                  req.spec.sharePolicy)) {
                throw ProtocolError("share_policy must be \"spatial\", "
                                    "\"vt-fill\" or \"preempt\"");
            }
        }
        if (const Json *scale = doc.find("scale"))
            req.spec.scale = requireUnsigned(*scale, "scale", 64);
        if (const Json *prio = doc.find("priority")) {
            if (!prio->isString())
                throw ProtocolError("priority must be a string");
            req.priority = parsePriority(prio->asString());
        }
        if (const Json *cfg = doc.find("config"))
            applyConfigOverrides(req.spec.config, *cfg);
        if (const Json *interval = doc.find("stats_interval")) {
            req.spec.statsInterval = requireUnsigned(
                *interval, "stats_interval", 1ull << 40);
        }
        if (const Json *every = doc.find("checkpoint_every")) {
            req.spec.checkpointEvery = requireUnsigned(
                *every, "checkpoint_every", 1ull << 40);
        }
        if (const Json *inject = doc.find("inject_fail"))
            req.spec.injectFail = requireUnsigned(*inject, "inject_fail", 8);
        if (const Json *threads = doc.find("sim_threads")) {
            // Protocol-level sanity bound only; the service enforces
            // its own (configurable, usually tighter) maxSimThreads at
            // admission.
            req.spec.simThreads = static_cast<unsigned>(
                requireUnsigned(*threads, "sim_threads", 256));
        }
        if (const Json *trace = doc.find("record_trace")) {
            if (!trace->isString() || trace->asString().empty())
                throw ProtocolError(
                    "record_trace must be a non-empty string path");
            req.spec.recordTrace = trace->asString();
        }
        if (const Json *xfer = doc.find("resume_xfer")) {
            req.resumeXfer = requireUnsigned(
                *xfer, "resume_xfer",
                std::numeric_limits<std::int64_t>::max());
            if (req.resumeXfer == 0)
                throw ProtocolError("resume_xfer must be a staged "
                                    "transfer id");
        }
    } else if (name == "wait" || name == "query" || name == "cancel" ||
               name == "yank" || name == "release") {
        req.op = name == "wait"    ? Request::Op::Wait
                 : name == "query" ? Request::Op::Query
                 : name == "cancel" ? Request::Op::Cancel
                 : name == "yank"   ? Request::Op::Yank
                                    : Request::Op::Release;
        const Json *job = doc.find("job");
        if (!job)
            throw ProtocolError(name + " needs a \"job\" id");
        req.job = requireUnsigned(
            *job, "job", std::numeric_limits<std::int64_t>::max());
    } else if (name == "ckpt_read") {
        req.op = Request::Op::CkptRead;
        const Json *job = doc.find("job");
        if (!job)
            throw ProtocolError("ckpt_read needs a \"job\" id");
        req.job = requireUnsigned(
            *job, "job", std::numeric_limits<std::int64_t>::max());
        if (const Json *offset = doc.find("offset")) {
            req.offset = requireUnsigned(
                *offset, "offset",
                std::numeric_limits<std::int64_t>::max());
        }
        const Json *len = doc.find("len");
        if (!len)
            throw ProtocolError("ckpt_read needs a \"len\"");
        // Bounded so one request cannot ask the daemon to base64 an
        // arbitrarily large reply in one piece.
        req.len = requireUnsigned(*len, "len", 1u << 20);
        if (req.len == 0)
            throw ProtocolError("len must be positive");
    } else if (name == "ckpt_begin") {
        req.op = Request::Op::CkptBegin;
    } else if (name == "ckpt_chunk") {
        req.op = Request::Op::CkptChunk;
        const Json *xfer = doc.find("xfer");
        if (!xfer)
            throw ProtocolError("ckpt_chunk needs an \"xfer\" id");
        req.xfer = requireUnsigned(
            *xfer, "xfer", std::numeric_limits<std::int64_t>::max());
        const Json *data = doc.find("data");
        if (!data || !data->isString())
            throw ProtocolError("ckpt_chunk needs base64 \"data\"");
        req.data = data->asString();
    } else if (name == "status") {
        req.op = Request::Op::Status;
    } else if (name == "ping") {
        req.op = Request::Op::Ping;
    } else if (name == "metrics") {
        req.op = Request::Op::Metrics;
    } else if (name == "shutdown") {
        req.op = Request::Op::Shutdown;
    } else {
        throw ProtocolError("unknown op '" + name + "'");
    }
    return req;
}

Json
kernelStatsToJson(const KernelStats &stats)
{
    Json::Object stalls;
    stalls["issued"] = Json(stats.stalls.issued);
    stalls["mem"] = Json(stats.stalls.memStall);
    stalls["short"] = Json(stats.stalls.shortStall);
    stalls["barrier"] = Json(stats.stalls.barrierStall);
    stalls["swap"] = Json(stats.stalls.swapStall);
    stalls["idle"] = Json(stats.stalls.idle);

    Json::Object o;
    o["cycles"] = Json(stats.cycles);
    o["ipc"] = Json(stats.ipc);
    o["warp_instructions"] = Json(stats.warpInstructions);
    o["thread_instructions"] = Json(stats.threadInstructions);
    o["ctas_completed"] = Json(stats.ctasCompleted);
    o["l1_hits"] = Json(stats.l1Hits);
    o["l1_misses"] = Json(stats.l1Misses);
    o["l2_hits"] = Json(stats.l2Hits);
    o["l2_misses"] = Json(stats.l2Misses);
    o["dram_row_hits"] = Json(stats.dramRowHits);
    o["dram_row_misses"] = Json(stats.dramRowMisses);
    o["dram_bytes"] = Json(stats.dramBytes);
    o["swap_outs"] = Json(stats.swapOuts);
    o["swap_ins"] = Json(stats.swapIns);
    o["stalls"] = Json(std::move(stalls));
    return Json(std::move(o));
}

KernelStats
kernelStatsFromJson(const Json &json)
{
    const auto field = [&json](const char *name) -> const Json & {
        const Json *v = json.find(name);
        if (!v)
            throw ProtocolError(std::string("stats reply missing '") +
                                name + "'");
        return *v;
    };
    KernelStats s;
    s.cycles = field("cycles").asInt();
    s.ipc = field("ipc").asDouble();
    s.warpInstructions = field("warp_instructions").asInt();
    s.threadInstructions = field("thread_instructions").asInt();
    s.ctasCompleted = field("ctas_completed").asInt();
    s.l1Hits = field("l1_hits").asInt();
    s.l1Misses = field("l1_misses").asInt();
    s.l2Hits = field("l2_hits").asInt();
    s.l2Misses = field("l2_misses").asInt();
    s.dramRowHits = field("dram_row_hits").asInt();
    s.dramRowMisses = field("dram_row_misses").asInt();
    s.dramBytes = field("dram_bytes").asInt();
    s.swapOuts = field("swap_outs").asInt();
    s.swapIns = field("swap_ins").asInt();
    const Json &stalls = field("stalls");
    const auto stall = [&stalls](const char *name) -> std::uint64_t {
        const Json *v = stalls.find(name);
        if (!v)
            throw ProtocolError(std::string("stalls reply missing '") +
                                name + "'");
        return v->asInt();
    };
    s.stalls.issued = stall("issued");
    s.stalls.memStall = stall("mem");
    s.stalls.shortStall = stall("short");
    s.stalls.barrierStall = stall("barrier");
    s.stalls.swapStall = stall("swap");
    s.stalls.idle = stall("idle");
    return s;
}

Json
snapshotToJson(const JobSnapshot &snap)
{
    Json::Object o;
    o["ok"] = Json(true);
    o["job"] = Json(snap.id);
    o["state"] = Json(toString(snap.state));
    o["priority"] = Json(toString(snap.priority));
    o["workload"] = Json(snap.workload);
    o["scale"] = Json(snap.scale);
    if (snap.simThreads > 1)
        o["sim_threads"] = Json(snap.simThreads);
    o["preemptions"] = Json(snap.preemptions);
    o["retries"] = Json(snap.retries);
    o["wait_seconds"] = Json(snap.waitSeconds);
    o["wall_seconds"] = Json(snap.wallSeconds);
    if (!snap.failureReason.empty())
        o["reason"] = Json(snap.failureReason);
    if (snap.state == JobState::Done) {
        o["verified"] = Json(snap.verified);
        o["max_simt_depth"] = Json(snap.maxSimtDepth);
        o["stats"] = kernelStatsToJson(snap.stats);
        if (!snap.grids.empty()) {
            Json::Array grids;
            for (const GridStats &gs : snap.grids) {
                Json::Object g;
                g["kernel"] = Json(gs.kernelName);
                g["priority"] = Json(gs.priority);
                g["stats"] = kernelStatsToJson(gs.stats);
                grids.push_back(Json(std::move(g)));
            }
            o["grids"] = Json(std::move(grids));
        }
    }
    return Json(std::move(o));
}

std::string
errorReply(const std::string &message)
{
    Json::Object o;
    o["ok"] = Json(false);
    o["error"] = Json(message);
    return Json(std::move(o)).dump();
}

} // namespace vtsim::service
