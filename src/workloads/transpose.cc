/**
 * @file
 * Shared-memory tiled matrix transpose (16x16 tiles, padded to dodge bank
 * conflicts): coalesced loads and stores with a barrier between phases.
 */

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

class Transpose : public Workload
{
  public:
    explicit Transpose(std::uint32_t scale) : n_(scale == 0 ? 32 : 256)
    {
        if (scale > 1)
            n_ = 256 + 64 * (scale - 1);
    }

    std::string name() const override { return "transpose"; }

    std::string
    description() const override
    {
        return "16x16 shared-mem tiled transpose, padded tiles";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        // Tile stride is 17 words to avoid shared-memory bank conflicts.
        return assemble(R"(
.kernel transpose
.shared 1088
    ldp r0, 0            # in
    ldp r1, 1            # out
    ldp r2, 2            # N
    s2r r3, ctaid.x
    s2r r4, ctaid.y
    s2r r5, tid.x
    s2r r6, tid.y
    movi r7, 16
    imad r8, r3, r7, r5  # x = bx*16 + tx
    imad r9, r4, r7, r6  # y = by*16 + ty
    imad r10, r9, r2, r8 # y*N + x
    shl r10, r10, 2
    iadd r10, r10, r0
    ldg r10, [r10]
    movi r11, 17
    imad r12, r6, r11, r5 # ty*17 + tx
    shl r12, r12, 2
    sts [r12], r10
    bar
    imad r8, r4, r7, r5  # xo = by*16 + tx
    imad r9, r3, r7, r6  # yo = bx*16 + ty
    imad r9, r9, r2, r8
    shl r9, r9, 2
    iadd r9, r9, r1
    imad r12, r5, r11, r6 # tx*17 + ty
    shl r12, r12, 2
    lds r12, [r12]
    stg [r9], r12
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd09);
        std::vector<std::uint32_t> in(std::size_t(n_) * n_);
        for (auto &v : in)
            v = static_cast<std::uint32_t>(rng.next());
        inAddr_ = gmem.alloc(in.size() * 4);
        outAddr_ = gmem.alloc(in.size() * 4);
        gmem.writeWords(inAddr_, in);

        expected_.resize(in.size());
        for (std::uint32_t y = 0; y < n_; ++y)
            for (std::uint32_t x = 0; x < n_; ++x)
                expected_[std::size_t(x) * n_ + y] =
                    in[std::size_t(y) * n_ + x];

        LaunchParams lp;
        lp.cta = Dim3(16, 16);
        lp.grid = Dim3(n_ / 16, n_ / 16);
        lp.params = {std::uint32_t(inAddr_), std::uint32_t(outAddr_), n_};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readWords(outAddr_, expected_.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            if (got[i] != expected_[i])
                return false;
        return true;
    }

  private:
    std::uint32_t n_;
    Addr inAddr_ = 0, outAddr_ = 0;
    std::vector<std::uint32_t> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeTranspose(std::uint32_t scale)
{
    return std::make_unique<Transpose>(scale);
}

} // namespace vtsim
