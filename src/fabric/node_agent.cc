#include "fabric/node_agent.hh"

#include <algorithm>

#include "common/logger.hh"
#include "service/client.hh"
#include "service/service.hh"

namespace vtsim::fabric {

using service::Json;

NodeAgent::NodeAgent(service::JobService &service,
                     NodeAgentConfig config)
    : service_(service), config_(std::move(config))
{}

NodeAgent::~NodeAgent()
{
    stop();
}

void
NodeAgent::start()
{
    thread_ = std::thread([this] { run(); });
}

void
NodeAgent::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
        cv_.notify_all();
    }
    if (thread_.joinable())
        thread_.join();
}

bool
NodeAgent::sleepFor(int ms)
{
    std::unique_lock<std::mutex> lk(mu_);
    return !cv_.wait_for(lk, std::chrono::milliseconds(ms),
                         [this] { return stop_; });
}

void
NodeAgent::run()
{
    int backoff = 200;
    for (;;) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (stop_)
                return;
        }
        try {
            session();
            backoff = 200; // A session ran: reset the reconnect pace.
        } catch (const std::exception &e) {
            logging::warn("node-agent", "coordinator link down (",
                          e.what(), "); retrying");
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (stop_)
                return;
        }
        if (!sleepFor(backoff))
            return;
        backoff = std::min(backoff * 2, 5000);
    }
}

void
NodeAgent::session()
{
    // Heartbeats are short request/replies: a bounded IO timeout keeps
    // a wedged coordinator from hanging this thread forever.
    service::Client client(config_.coordinator, config_.token, 3000,
                           5000);
    {
        const auto counts = service_.counts();
        Json::Object reg;
        reg["op"] = Json("register");
        reg["node"] = Json(config_.node);
        reg["addr"] = Json(config_.advertise.str());
        reg["workers"] = Json(counts.workers);
        const Json reply = client.request(Json(std::move(reg)));
        const Json *ok = reply.find("ok");
        if (!ok || !ok->isBool() || !ok->asBool()) {
            const Json *err = reply.find("error");
            throw std::runtime_error(
                "register rejected: " +
                (err && err->isString() ? err->asString()
                                        : reply.dump()));
        }
        logging::info("node-agent", "registered '", config_.node,
                      "' (advertising ", config_.advertise.str(),
                      ") with coordinator ",
                      config_.coordinator.str());
    }
    for (;;) {
        if (!sleepFor(config_.heartbeatMs))
            return;
        const auto counts = service_.counts();
        Json::Object hb;
        hb["op"] = Json("heartbeat");
        hb["node"] = Json(config_.node);
        hb["queue_depth"] = Json(counts.queueDepth);
        hb["running"] = Json(counts.running);
        hb["parked"] = Json(counts.parked);
        const Json reply = client.request(Json(std::move(hb)));
        const Json *ok = reply.find("ok");
        if (!ok || !ok->isBool() || !ok->asBool()) {
            // A coordinator that restarted no longer knows this node:
            // tear the session down and re-register.
            throw std::runtime_error("heartbeat rejected: " +
                                     reply.dump());
        }
    }
}

} // namespace vtsim::fabric
