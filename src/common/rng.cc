#include "common/rng.hh"

#include "common/log.hh"

namespace vtsim {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    reset();
}

void
Rng::reset()
{
    // Seed the four state words with SplitMix64 as the xoshiro authors
    // recommend; guards against the all-zero state.
    std::uint64_t s = seed_;
    for (auto &word : state_)
        word = splitMix64(s);
    if (!(state_[0] | state_[1] | state_[2] | state_[3]))
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    VTSIM_ASSERT(bound != 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    VTSIM_ASSERT(lo <= hi, "empty range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span ? nextBelow(span) : next());
}

float
Rng::nextFloat()
{
    return static_cast<float>(next() >> 40) * (1.0f / (1 << 24));
}

bool
Rng::nextBool(double p)
{
    return nextFloat() < p;
}

} // namespace vtsim
