#include "core/virtual_thread.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"
#include "common/trace.hh"
#include "sim/serialize_util.hh"
#include "telemetry/trace_json.hh"

namespace vtsim {

std::string
toString(CtaState state)
{
    switch (state) {
      case CtaState::Active: return "active";
      case CtaState::SwappingOut: return "swapping-out";
      case CtaState::Inactive: return "inactive";
      case CtaState::SwappingIn: return "swapping-in";
    }
    return "?";
}

VirtualThreadManager::VirtualThreadManager(const GpuConfig &config,
                                           VtCtaQuery &query, SmId sm_id)
    : config_(config), query_(query), smId_(sm_id),
      stats_("sm" + std::to_string(sm_id) + ".vt")
{
    stats_.addCounter("swap_outs", &swapOuts_, "CTA swap-outs");
    stats_.addCounter("swap_ins", &swapIns_, "CTA swap-ins");
    for (GridId g = 0; g < maxGrids; ++g) {
        const std::string p = "grid" + std::to_string(g);
        stats_.addCounter(p + ".swap_outs", &gridSwapOuts_[g],
                          "CTA swap-outs of grid " + std::to_string(g));
        stats_.addCounter(p + ".swap_ins", &gridSwapIns_[g],
                          "CTA swap-ins of grid " + std::to_string(g));
    }
    stats_.addCounter("fresh_activations", &freshActivations_,
                      "CTAs activated straight from launch");
    stats_.addCounter("swap_in_not_ready", &swapInNotReady_,
                      "swap-ins of CTAs with data still outstanding");
    stats_.addScalar("resident_ctas", &residentSamples_,
                     "resident CTAs sampled per cycle");
    stats_.addScalar("active_ctas", &activeSamples_,
                     "active CTAs sampled per cycle");
    stats_.addHistogram("swap_stall_streak", &swapStallStreak_,
                        "victim stall streak at swap-out (cycles)");
}

void
VirtualThreadManager::traceStateChange(VirtualCtaId id, CtaState state,
                                       Cycle now)
{
    if (!traceJson_)
        return;
    traceJson_->end(smId_, id, now);
    traceJson_->begin(smId_, id, now, toString(state), "vt");
}

void
VirtualThreadManager::configureGrid(GridId grid,
                                    const CtaFootprint &footprint)
{
    VTSIM_ASSERT(grid < maxGrids, "grid id ", grid, " out of range");
    VTSIM_ASSERT(residentCount_ == 0,
                 "kernel reconfigured with CTAs resident");
    VTSIM_ASSERT(footprint.warpsPerCta > 0 && footprint.threadsPerCta > 0,
                 "degenerate CTA footprint");
    fps_[grid] = footprint;
}

bool
VirtualThreadManager::activeSlotFreeFor(const CtaFootprint &fp) const
{
    return activeCtas_ < std::min(config_.effMaxCtasPerSm(),
                                  dynamicCap_) &&
           warpsActive_ + fp.warpsPerCta <= config_.effMaxWarpsPerSm() &&
           threadsActive_ + fp.threadsPerCta <=
               config_.effMaxThreadsPerSm();
}

bool
VirtualThreadManager::canAdmit(GridId grid) const
{
    const CtaFootprint &fp = fps_[grid];
    VTSIM_ASSERT(fp.warpsPerCta > 0, "canAdmit before configureGrid");
    // Capacity limit binds in both machines: registers and shared memory
    // are physically allocated per resident CTA.
    if (regsInUse_ + fp.regsPerCta > config_.registersPerSm)
        return false;
    if (sharedInUse_ + fp.sharedPerCta > config_.sharedMemPerSm)
        return false;

    if (!config_.vtEnabled) {
        // Baseline: the scheduling limit also gates admission.
        return activeSlotFreeFor(fp);
    }
    // VT: admit past the scheduling limit, up to the virtual-CTA budget.
    const std::uint32_t limit =
        config_.vtMaxVirtualCtasPerSm
            ? config_.vtMaxVirtualCtasPerSm
            : std::numeric_limits<std::uint32_t>::max();
    return residentCount_ < limit;
}

void
VirtualThreadManager::activate(VirtualCtaId id, Cycle now)
{
    CtaRec &rec = ctas_[id];
    const CtaFootprint &fp = fps_[rec.grid];
    VTSIM_ASSERT(activeSlotFreeFor(fp), "activate without a free slot");
    ++activeCtas_;
    warpsActive_ += fp.warpsPerCta;
    threadsActive_ += fp.threadsPerCta;
    rec.stalledFor = 0;
    if (rec.everSwapped) {
        // Restoring saved scheduling state costs the swap-in latency.
        rec.state = CtaState::SwappingIn;
        rec.transitionAt = now + config_.vtSwapInLatency;
        ++swapIns_;
        ++gridSwapIns_[rec.grid];
        traceStateChange(id, CtaState::SwappingIn, now);
    } else {
        rec.state = CtaState::Active;
        ++freshActivations_;
        traceStateChange(id, CtaState::Active, now);
        query_.onCtaIssuableChanged(id, true);
    }
}

void
VirtualThreadManager::releaseActiveSlot(const CtaFootprint &fp)
{
    VTSIM_ASSERT(activeCtas_ > 0, "active slot underflow");
    --activeCtas_;
    warpsActive_ -= fp.warpsPerCta;
    threadsActive_ -= fp.threadsPerCta;
}

void
VirtualThreadManager::onAdmit(VirtualCtaId id, Cycle now, GridId grid)
{
    VTSIM_ASSERT(canAdmit(grid), "onAdmit without canAdmit");
    if (id >= ctas_.size())
        ctas_.resize(id + 1);
    VTSIM_ASSERT(!ctas_[id].resident, "CTA ", id, " already resident");

    regsInUse_ += fps_[grid].regsPerCta;
    sharedInUse_ += fps_[grid].sharedPerCta;

    CtaRec &rec = ctas_[id];
    rec = CtaRec{};
    rec.resident = true;
    rec.age = nextAge_++;
    rec.state = CtaState::Inactive;
    rec.grid = grid;
    ++residentCount_;

    VTSIM_TRACE(TraceFlag::Cta, now, stats_.name(), "admit cta ", id,
                " (grid ", grid, ", resident ", residentCount_, ")");
    if (traceJson_) {
        traceJson_->instant(smId_, id, now, "admit", "cta");
        traceJson_->begin(smId_, id, now, toString(rec.state), "vt");
    }
    if (!activationBlocked_[grid] && activeSlotFreeFor(fps_[grid]))
        activate(id, now);
}

void
VirtualThreadManager::onCtaFinished(VirtualCtaId id, Cycle now)
{
    VTSIM_ASSERT(id < ctas_.size() && ctas_[id].resident,
                 "finish of unknown CTA ", id);
    VTSIM_ASSERT(ctas_[id].state == CtaState::Active,
                 "CTA ", id, " finished while ", toString(ctas_[id].state));
    VTSIM_TRACE(TraceFlag::Cta, now, stats_.name(), "finish cta ", id);
    if (traceJson_) {
        traceJson_->end(smId_, id, now);
        traceJson_->instant(smId_, id, now, "finish", "cta");
    }
    const CtaFootprint &fp = fps_[ctas_[id].grid];
    releaseActiveSlot(fp);
    regsInUse_ -= fp.regsPerCta;
    sharedInUse_ -= fp.sharedPerCta;
    ctas_[id].resident = false;
    --residentCount_;

    // The freed slot goes to the best inactive CTA right away.
    const VirtualCtaId incoming = pickSwapIn(false);
    if (incoming != invalidId &&
        activeSlotFreeFor(fps_[ctas_[incoming].grid]))
        activate(incoming, now);
}

CtaState
VirtualThreadManager::state(VirtualCtaId id) const
{
    VTSIM_ASSERT(id < ctas_.size() && ctas_[id].resident,
                 "state() of unknown CTA ", id);
    return ctas_[id].state;
}

GridId
VirtualThreadManager::gridOf(VirtualCtaId id) const
{
    VTSIM_ASSERT(id < ctas_.size() && ctas_[id].resident,
                 "gridOf() of unknown CTA ", id);
    return ctas_[id].grid;
}

void
VirtualThreadManager::forceSwapOut(VirtualCtaId id, Cycle now)
{
    VTSIM_ASSERT(config_.vtEnabled, "forceSwapOut without VT machinery");
    VTSIM_ASSERT(id < ctas_.size() && ctas_[id].resident,
                 "forceSwapOut of unknown CTA ", id);
    CtaRec &out = ctas_[id];
    VTSIM_ASSERT(out.state == CtaState::Active, "forceSwapOut of ",
                 toString(out.state), " CTA ", id);
    VTSIM_TRACE(TraceFlag::Swap, now, stats_.name(),
                "preempt swap out cta ", id, " (grid ", out.grid, ")");
    // No swapStallStreak_ sample: this is a preemption, not the stall
    // trigger, and the histogram measures the trigger's patience.
    out.state = CtaState::SwappingOut;
    out.transitionAt = now + config_.vtSwapOutLatency;
    out.everSwapped = true;
    out.stalledFor = 0;
    traceStateChange(id, CtaState::SwappingOut, now);
    query_.onCtaIssuableChanged(id, false);
    ++swapOuts_;
    ++gridSwapOuts_[out.grid];
    releaseActiveSlot(fps_[out.grid]);
}

VirtualCtaId
VirtualThreadManager::pickSwapIn(bool require_ready) const
{
    VirtualCtaId best = invalidId;
    bool best_ready = false;
    std::uint64_t best_age = ~0ull;
    for (VirtualCtaId id = 0; id < ctas_.size(); ++id) {
        const CtaRec &rec = ctas_[id];
        if (!rec.resident || rec.state != CtaState::Inactive)
            continue;
        if (activationBlocked_[rec.grid])
            continue; // Preempt policy parks this grid's CTAs.
        const bool ready = query_.ctaPendingOffChip(id) == 0;
        if (config_.vtSwapInPolicy == VtSwapInPolicy::ReadyFirst) {
            // Prefer ready CTAs; oldest first within each class.
            if (best == invalidId || (ready && !best_ready) ||
                (ready == best_ready && rec.age < best_age)) {
                best = id;
                best_ready = ready;
                best_age = rec.age;
            }
        } else {
            // OldestFirst ablation: strict age order.
            if (rec.age < best_age) {
                best = id;
                best_ready = ready;
                best_age = rec.age;
            }
        }
    }
    // Under the paper's policy a swap only pays off when the incoming CTA
    // is ready: never swap in a CTA that would immediately stall. Filling
    // an already-free slot (require_ready == false) takes any CTA.
    if (require_ready &&
        config_.vtSwapInPolicy == VtSwapInPolicy::ReadyFirst &&
        !best_ready) {
        return invalidId;
    }
    return best;
}

Cycle
VirtualThreadManager::nextEventCycle(Cycle now) const
{
    if (!config_.vtEnabled)
        return neverCycle;

    // A free active slot with an inactive CTA waiting (possible after a
    // throttle-cap raise) activates at the very next tick, and so does
    // the next pair of an already-eligible swap (one pair per cycle).
    {
        const VirtualCtaId cand = pickSwapIn(false);
        if (cand != invalidId &&
            activeSlotFreeFor(fps_[ctas_[cand].grid]))
            return now;
    }
    for (VirtualCtaId id = 0; id < ctas_.size(); ++id) {
        const CtaRec &rec = ctas_[id];
        if (rec.resident && rec.state == CtaState::Active &&
            rec.triggeredNow && rec.stalledFor >= config_.vtStallThreshold) {
            if (pickSwapIn(true) != invalidId)
                return now;
            break; // No ready incoming; the same answer for any victim.
        }
    }

    Cycle next = neverCycle;
    for (VirtualCtaId id = 0; id < ctas_.size(); ++id) {
        const CtaRec &rec = ctas_[id];
        if (!rec.resident)
            continue;
        if (rec.state == CtaState::SwappingOut ||
            rec.state == CtaState::SwappingIn) {
            next = std::min(next, std::max(now, rec.transitionAt));
        } else if (rec.state == CtaState::Active &&
                   rec.stalledFor < config_.vtStallThreshold &&
                   rec.stalledNow) {
            // With the stall condition holding steady, the streak first
            // reaches the swap threshold at this cycle's tick. A streak
            // already at/past the threshold generates no event: the
            // trigger was evaluated above and whatever blocked it only
            // changes on an external event.
            next = std::min(
                next,
                now + (config_.vtStallThreshold - 1 - rec.stalledFor));
        }
    }
    return next;
}

void
VirtualThreadManager::fastForwardIdle(std::uint64_t n)
{
    residentSamples_.sampleN(residentCount_, n);
    activeSamples_.sampleN(activeCtas_, n);
    if (!config_.vtEnabled)
        return;
    // Replicate tick()'s streak tracking: stalled Active CTAs count the
    // window's cycles; everyone else's streak is already 0 and stays 0.
    for (CtaRec &rec : ctas_) {
        if (rec.resident && rec.state == CtaState::Active &&
            rec.stalledNow) {
            rec.stalledFor += n;
        }
    }
}

void
VirtualThreadManager::tick(Cycle now)
{
    residentSamples_.sample(residentCount_);
    activeSamples_.sample(activeCtas_);

    if (!config_.vtEnabled)
        return;

    // 1. Complete in-flight transitions.
    for (VirtualCtaId id = 0; id < ctas_.size(); ++id) {
        CtaRec &rec = ctas_[id];
        if (!rec.resident || rec.transitionAt > now)
            continue;
        if (rec.state == CtaState::SwappingOut) {
            rec.state = CtaState::Inactive;
            traceStateChange(id, CtaState::Inactive, now);
        } else if (rec.state == CtaState::SwappingIn) {
            rec.state = CtaState::Active;
            rec.stalledFor = 0;
            traceStateChange(id, CtaState::Active, now);
            query_.onCtaIssuableChanged(id, true);
        }
    }

    // 2. Fill any free active slots (e.g. freed by admissions racing).
    while (true) {
        const VirtualCtaId incoming = pickSwapIn(false);
        if (incoming == invalidId ||
            !activeSlotFreeFor(fps_[ctas_[incoming].grid]))
            break;
        activate(incoming, now);
    }

    // 3. Track stall streaks of active CTAs. The streak follows the
    //    configured trigger's own condition so the AnyWarpStalled
    //    ablation genuinely fires earlier than the paper's policy.
    // 4. At most one swap pair per cycle (one context-switch port).
    //    One pass evaluates both, reusing the streak's warp-scan for the
    //    trigger (identical decisions to swapTriggered()).
    const bool any_trigger =
        config_.vtSwapTrigger == VtSwapTrigger::AnyWarpStalled;
    VirtualCtaId victim = invalidId;
    std::uint32_t victim_stall = 0;
    for (VirtualCtaId id = 0; id < ctas_.size(); ++id) {
        CtaRec &rec = ctas_[id];
        if (!rec.resident || rec.state != CtaState::Active)
            continue;
        const bool stalled = any_trigger
                                 ? query_.ctaAnyWarpLongStalled(id)
                                 : query_.ctaFullyStalled(id);
        rec.stalledNow = stalled;
        rec.triggeredNow = false;
        if (stalled)
            ++rec.stalledFor;
        else
            rec.stalledFor = 0;
        if (rec.stalledFor < config_.vtStallThreshold)
            continue;
        const bool triggered =
            stalled &&
            (any_trigger || query_.ctaAnyWarpLongStalled(id));
        rec.triggeredNow = triggered;
        if (triggered && rec.stalledFor >= victim_stall) {
            victim = id;
            victim_stall = rec.stalledFor;
        }
    }
    if (victim == invalidId)
        return;
    const VirtualCtaId incoming = pickSwapIn(true);
    if (incoming == invalidId)
        return; // Nobody to run instead: swapping out would only hurt.

    // Cross-grid swap pairs must also fit: with mixed footprints the
    // incoming CTA may need more warp/thread slots than the victim
    // frees. Skip the swap this cycle rather than strand the victim.
    // (Same-footprint pairs — every solo launch — always fit, matching
    // the single-grid machine's invariant.)
    const CtaFootprint &fpOut = fps_[ctas_[victim].grid];
    const CtaFootprint &fpIn = fps_[ctas_[incoming].grid];
    const bool fits =
        activeCtas_ - 1 < std::min(config_.effMaxCtasPerSm(),
                                   dynamicCap_) &&
        warpsActive_ - fpOut.warpsPerCta + fpIn.warpsPerCta <=
            config_.effMaxWarpsPerSm() &&
        threadsActive_ - fpOut.threadsPerCta + fpIn.threadsPerCta <=
            config_.effMaxThreadsPerSm();
    if (!fits)
        return;

    VTSIM_TRACE(TraceFlag::Swap, now, stats_.name(), "swap out cta ",
                victim, " (stalled ", ctas_[victim].stalledFor,
                " cycles), swap in cta ", incoming);
    CtaRec &out = ctas_[victim];
    swapStallStreak_.sample(out.stalledFor);
    out.state = CtaState::SwappingOut;
    out.transitionAt = now + config_.vtSwapOutLatency;
    out.everSwapped = true;
    traceStateChange(victim, CtaState::SwappingOut, now);
    query_.onCtaIssuableChanged(victim, false);
    ++swapOuts_;
    ++gridSwapOuts_[out.grid];
    releaseActiveSlot(fpOut);

    CtaRec &in = ctas_[incoming];
    if (query_.ctaPendingOffChip(incoming) != 0)
        ++swapInNotReady_;
    ++activeCtas_;
    warpsActive_ += fpIn.warpsPerCta;
    threadsActive_ += fpIn.threadsPerCta;
    in.stalledFor = 0;
    in.everSwapped = true;
    in.state = CtaState::SwappingIn;
    // Restore begins after the outgoing state is saved.
    in.transitionAt = now + config_.vtSwapOutLatency +
                      config_.vtSwapInLatency;
    ++swapIns_;
    ++gridSwapIns_[in.grid];
    traceStateChange(incoming, CtaState::SwappingIn, now);
}

void
VirtualThreadManager::reset()
{
    fps_ = {};
    activationBlocked_ = {};
    ctas_.clear();
    residentCount_ = 0;
    nextAge_ = 0;
    dynamicCap_ = std::numeric_limits<std::uint32_t>::max();
    activeCtas_ = 0;
    warpsActive_ = 0;
    threadsActive_ = 0;
    regsInUse_ = 0;
    sharedInUse_ = 0;
    swapOuts_.reset();
    swapIns_.reset();
    for (GridId g = 0; g < maxGrids; ++g) {
        gridSwapOuts_[g].reset();
        gridSwapIns_[g].reset();
    }
    freshActivations_.reset();
    swapInNotReady_.reset();
    residentSamples_.reset();
    activeSamples_.reset();
    swapStallStreak_.reset();
}

void
VirtualThreadManager::save(Serializer &ser) const
{
    const std::size_t sec = ser.beginSection("vtmg");
    static_assert(std::is_trivially_copyable_v<CtaFootprint>);
    for (const CtaFootprint &fp : fps_)
        ser.put(fp);
    for (std::uint8_t blocked : activationBlocked_)
        ser.put(blocked);
    // CtaRec mixes bools with wider fields, so it goes out field by
    // field to keep the bytes free of padding.
    ser.put<std::uint64_t>(ctas_.size());
    for (const CtaRec &cta : ctas_) {
        ser.put<std::uint8_t>(cta.resident);
        ser.put<std::uint8_t>(static_cast<std::uint8_t>(cta.state));
        ser.put(cta.transitionAt);
        ser.put(cta.age);
        ser.put(cta.stalledFor);
        ser.put<std::uint8_t>(cta.everSwapped);
        ser.put<std::uint8_t>(cta.stalledNow);
        ser.put<std::uint8_t>(cta.triggeredNow);
        ser.put(cta.grid);
    }
    ser.put(residentCount_);
    ser.put(nextAge_);
    ser.put(dynamicCap_);
    ser.put(activeCtas_);
    ser.put(warpsActive_);
    ser.put(threadsActive_);
    ser.put(regsInUse_);
    ser.put(sharedInUse_);
    saveStat(ser, swapOuts_);
    saveStat(ser, swapIns_);
    for (GridId g = 0; g < maxGrids; ++g) {
        saveStat(ser, gridSwapOuts_[g]);
        saveStat(ser, gridSwapIns_[g]);
    }
    saveStat(ser, freshActivations_);
    saveStat(ser, swapInNotReady_);
    saveStat(ser, residentSamples_);
    saveStat(ser, activeSamples_);
    saveStat(ser, swapStallStreak_);
    ser.endSection(sec);
}

void
VirtualThreadManager::restore(Deserializer &des)
{
    des.beginSection("vtmg");
    for (CtaFootprint &fp : fps_)
        des.get(fp);
    for (std::uint8_t &blocked : activationBlocked_)
        des.get(blocked);
    ctas_.resize(des.get<std::uint64_t>());
    for (CtaRec &cta : ctas_) {
        cta.resident = des.get<std::uint8_t>() != 0;
        cta.state = static_cast<CtaState>(des.get<std::uint8_t>());
        des.get(cta.transitionAt);
        des.get(cta.age);
        des.get(cta.stalledFor);
        cta.everSwapped = des.get<std::uint8_t>() != 0;
        cta.stalledNow = des.get<std::uint8_t>() != 0;
        cta.triggeredNow = des.get<std::uint8_t>() != 0;
        des.get(cta.grid);
    }
    des.get(residentCount_);
    des.get(nextAge_);
    des.get(dynamicCap_);
    des.get(activeCtas_);
    des.get(warpsActive_);
    des.get(threadsActive_);
    des.get(regsInUse_);
    des.get(sharedInUse_);
    restoreStat(des, swapOuts_);
    restoreStat(des, swapIns_);
    for (GridId g = 0; g < maxGrids; ++g) {
        restoreStat(des, gridSwapOuts_[g]);
        restoreStat(des, gridSwapIns_[g]);
    }
    restoreStat(des, freshActivations_);
    restoreStat(des, swapInNotReady_);
    restoreStat(des, residentSamples_);
    restoreStat(des, activeSamples_);
    restoreStat(des, swapStallStreak_);
    des.endSection();
}

} // namespace vtsim
