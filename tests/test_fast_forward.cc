/**
 * @file
 * Determinism of the event-horizon fast-forward and the parallel
 * experiment runner. Fast-forward skips cycles, never work: every
 * KernelStats field must be bit-identical to the naive one-cycle-at-a-
 * time loop, on the baseline, Virtual Thread, and CTA-throttled
 * machines alike. Likewise, the parallel runner fans hermetic Gpu
 * instances across threads, so a --jobs 4 batch must reproduce a
 * sequential batch exactly.
 */

#include <gtest/gtest.h>

#include "bench_common.hh"
#include "gpu/gpu.hh"
#include "parallel_runner.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

using test::smallConfig;

/** Every field of KernelStats, bit for bit. */
void
expectIdenticalStats(const KernelStats &a, const KernelStats &b,
                     const std::string &context)
{
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.warpInstructions, b.warpInstructions) << context;
    EXPECT_EQ(a.threadInstructions, b.threadInstructions) << context;
    EXPECT_EQ(a.ctasCompleted, b.ctasCompleted) << context;
    EXPECT_EQ(a.ipc, b.ipc) << context;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << context;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << context;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << context;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << context;
    EXPECT_EQ(a.dramRowHits, b.dramRowHits) << context;
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << context;
    EXPECT_EQ(a.dramBytes, b.dramBytes) << context;
    EXPECT_EQ(a.swapOuts, b.swapOuts) << context;
    EXPECT_EQ(a.swapIns, b.swapIns) << context;
    EXPECT_EQ(a.stalls.issued, b.stalls.issued) << context;
    EXPECT_EQ(a.stalls.memStall, b.stalls.memStall) << context;
    EXPECT_EQ(a.stalls.shortStall, b.stalls.shortStall) << context;
    EXPECT_EQ(a.stalls.barrierStall, b.stalls.barrierStall) << context;
    EXPECT_EQ(a.stalls.swapStall, b.stalls.swapStall) << context;
    EXPECT_EQ(a.stalls.idle, b.stalls.idle) << context;
}

/** Run @p name on @p cfg; optionally report the fast-forwarded cycles. */
KernelStats
runOn(const GpuConfig &cfg, const std::string &name,
      Cycle *fast_forwarded = nullptr)
{
    auto wl = makeWorkload(name, 0);
    const Kernel k = wl->buildKernel();
    Gpu gpu(cfg);
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(k, lp);
    EXPECT_TRUE(wl->verify(gpu.memory())) << name;
    if (fast_forwarded)
        *fast_forwarded = gpu.fastForwardedCycles();
    return stats;
}

TEST(FastForward, BitIdenticalStatsOnBaseline)
{
    GpuConfig on = smallConfig();
    on.fastForwardEnabled = true;
    GpuConfig off = on;
    off.fastForwardEnabled = false;
    for (const auto &name : {"vecadd", "reduce", "bfs", "matmul"}) {
        const KernelStats a = runOn(on, name);
        const KernelStats b = runOn(off, name);
        expectIdenticalStats(a, b, std::string("baseline/") + name);
    }
}

TEST(FastForward, BitIdenticalStatsUnderVirtualThread)
{
    GpuConfig on = smallConfig();
    on.vtEnabled = true;
    on.fastForwardEnabled = true;
    GpuConfig off = on;
    off.fastForwardEnabled = false;
    for (const auto &name : {"vecadd", "bfs", "stencil"}) {
        const KernelStats a = runOn(on, name);
        const KernelStats b = runOn(off, name);
        expectIdenticalStats(a, b, std::string("vt/") + name);
    }
}

TEST(FastForward, BitIdenticalStatsUnderThrottling)
{
    GpuConfig on = smallConfig();
    on.throttleEnabled = true;
    on.fastForwardEnabled = true;
    GpuConfig off = on;
    off.fastForwardEnabled = false;
    for (const auto &name : {"vecadd", "bfs"}) {
        const KernelStats a = runOn(on, name);
        const KernelStats b = runOn(off, name);
        expectIdenticalStats(a, b, std::string("throttle/") + name);
    }
}

TEST(FastForward, ActuallySkipsCyclesOnMemoryBoundWork)
{
    // A pointer chase leaves the machine event-blocked for long DRAM
    // windows; the horizon jump must cover a meaningful share of them.
    GpuConfig cfg = smallConfig();
    cfg.fastForwardEnabled = true;
    Cycle skipped = 0;
    runOn(cfg, "bfs", &skipped);
    EXPECT_GT(skipped, 0u);

    cfg.fastForwardEnabled = false;
    runOn(cfg, "bfs", &skipped);
    EXPECT_EQ(skipped, 0u);
}

TEST(ParallelRunner, MatchesSequentialRun)
{
    // The acceptance gate: a --jobs 4 batch reproduces jobs=1 exactly,
    // result for result, field for field.
    const GpuConfig base = smallConfig();
    GpuConfig vt = base;
    vt.vtEnabled = true;

    std::vector<bench::RunSpec> specs;
    for (const auto &name : {"vecadd", "reduce", "bfs", "matmul"}) {
        specs.push_back({name, base, 0});
        specs.push_back({name, vt, 0});
    }
    const auto sequential = bench::runAll(specs, 1);
    const auto parallel = bench::runAll(specs, 4);

    ASSERT_EQ(sequential.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(sequential[i].workload, parallel[i].workload);
        EXPECT_TRUE(parallel[i].verified);
        expectIdenticalStats(sequential[i].stats, parallel[i].stats,
                             "jobs4/" + specs[i].workload);
    }
}

TEST(ParallelRunner, ResolveJobsPrecedence)
{
    const char *argv_flag[] = {"bin", "--jobs", "3"};
    EXPECT_EQ(bench::resolveJobs(3, const_cast<char **>(argv_flag)), 3u);

    const char *argv_eq[] = {"bin", "--jobs=7"};
    EXPECT_EQ(bench::resolveJobs(2, const_cast<char **>(argv_eq)), 7u);

    // A nonsense request is an error, not a silent one-worker
    // fallback: the user asked for something specific and got it
    // wrong.
    const char *argv_zero[] = {"bin", "--jobs", "0"};
    EXPECT_THROW(bench::resolveJobs(3, const_cast<char **>(argv_zero)),
                 FatalError);
    const char *argv_text[] = {"bin", "--jobs=banana"};
    EXPECT_THROW(bench::resolveJobs(2, const_cast<char **>(argv_text)),
                 FatalError);
}

} // namespace
} // namespace vtsim
