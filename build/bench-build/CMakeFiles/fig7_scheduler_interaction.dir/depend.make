# Empty dependencies file for fig7_scheduler_interaction.
# This may be replaced when dependencies are built.
