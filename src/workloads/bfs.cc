/**
 * @file
 * BFS-style pointer chasing: each thread follows `hops` successive hops
 * through a random permutation. Every hop is a dependent, uncoalesced,
 * cache-hostile load — the most latency-bound member of the suite and the
 * strongest Virtual Thread beneficiary.
 */

#include <numeric>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

class Bfs : public Workload
{
  public:
    explicit Bfs(std::uint32_t scale)
        : n_(scale == 0 ? 512 : 24576 * scale),
          hops_(scale == 0 ? 4 : 8)
    {}

    std::string name() const override { return "bfs"; }

    std::string
    description() const override
    {
        return "graph-frontier pointer chase over a random permutation";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        return assemble(R"(
.kernel bfs
    ldp r0, 0            # next[]
    ldp r1, 1            # out[]
    ldp r2, 2            # n
    ldp r3, 3            # hops
    s2r r4, ctaid.x
    s2r r5, ntid.x
    s2r r6, tid.x
    imad r7, r4, r5, r6  # i
    isetp.ge r8, r7, r2
    bra r8, done
    mov r9, r7           # cur
    movi r10, 0          # hop
hop:
    shl r11, r9, 2
    iadd r11, r11, r0
    ldg r9, [r11]        # cur = next[cur]
    iadd r10, r10, 1
    isetp.lt r12, r10, r3
    bra r12, hop
    shl r13, r7, 2
    iadd r13, r13, r1
    stg [r13], r9
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd07);
        // A random permutation guarantees full-period chains.
        std::vector<std::uint32_t> next(n_);
        std::iota(next.begin(), next.end(), 0u);
        for (std::uint32_t i = n_ - 1; i > 0; --i) {
            const std::uint32_t j = rng.nextBelow(i + 1);
            std::swap(next[i], next[j]);
        }
        nextAddr_ = gmem.alloc(n_ * 4);
        outAddr_ = gmem.alloc(n_ * 4);
        gmem.writeWords(nextAddr_, next);

        expected_.resize(n_);
        for (std::uint32_t i = 0; i < n_; ++i) {
            std::uint32_t cur = i;
            for (std::uint32_t h = 0; h < hops_; ++h)
                cur = next[cur];
            expected_[i] = cur;
        }

        LaunchParams lp;
        lp.cta = Dim3(64);
        lp.grid = Dim3(ceilDiv(n_, 64));
        lp.params = {std::uint32_t(nextAddr_), std::uint32_t(outAddr_), n_,
                     hops_};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readWords(outAddr_, n_);
        for (std::uint32_t i = 0; i < n_; ++i)
            if (got[i] != expected_[i])
                return false;
        return true;
    }

  private:
    std::uint32_t n_;
    std::uint32_t hops_;
    Addr nextAddr_ = 0, outAddr_ = 0;
    std::vector<std::uint32_t> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeBfs(std::uint32_t scale)
{
    return std::make_unique<Bfs>(scale);
}

} // namespace vtsim
