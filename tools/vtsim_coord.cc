/**
 * @file
 * vtsim-coord — the distributed-fabric coordinator. Federates N vtsimd
 * daemons (each run with --listen-tcp --node --coordinator) behind one
 * TCP submit endpoint: clients talk the same NDJSON protocol as to a
 * single daemon, while the coordinator does fair-share admission,
 * locality-aware dispatch, work stealing, and cross-daemon checkpoint
 * migration (src/fabric/coordinator.hh).
 *
 * Usage:
 *   vtsim-coord [--listen [HOST:]PORT] [--token SECRET] [--evlog PATH]
 *               [--stats-json PATH] [--tenant-rate R] [--tenant-burst B]
 *               [--tenant-quota N] [--max-backlog N]
 *               [--heartbeat-timeout MS] [--log-level LEVEL]
 *
 *   --listen [HOST:]PORT  TCP endpoint for clients and daemons
 *                         (default 127.0.0.1:7774; port 0 binds an
 *                         ephemeral port, printed at startup)
 *   --token SECRET        fleet bearer token; required on every
 *                         request line when set, and stamped on every
 *                         daemon-bound request
 *   --evlog PATH          vtsim-evlog-v1 lifecycle log (dispatch,
 *                         steal, migrate, throttle, node_lost, ...)
 *   --stats-json PATH     on shutdown, write a vtsim-stats-v1 document
 *                         whose "fabric" section holds the fleet
 *                         telemetry (runs stay with the daemons)
 *   --tenant-rate R       per-tenant token-bucket refill in submits/s;
 *                         0 disables rate limiting (default 0)
 *   --tenant-burst B      token-bucket burst capacity (default 8)
 *   --tenant-quota N      per-tenant in-flight fair-share quota;
 *                         0 = unlimited (default 64)
 *   --max-backlog N       pending-job bound; beyond it submits get
 *                         rejected:busy with retry_after_ms
 *                         (default 256)
 *   --heartbeat-timeout MS
 *                         declare a daemon lost after this silence
 *                         (default 3000)
 *   --log-level LEVEL     debug|info|warn|error|off (default info)
 *
 * Exits after a client's "shutdown" op (draining dispatched jobs
 * first) or on SIGINT/SIGTERM.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/logger.hh"
#include "fabric/coordinator.hh"
#include "service/stats_json.hh"

namespace {

vtsim::fabric::Coordinator *g_coord = nullptr;

void
onSignal(int)
{
    if (g_coord)
        g_coord->requestStop();
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: vtsim-coord [--listen [HOST:]PORT] [--token SECRET]\n"
        "                   [--evlog PATH] [--stats-json PATH]\n"
        "                   [--tenant-rate R] [--tenant-burst B] "
        "[--tenant-quota N]\n"
        "                   [--max-backlog N] [--heartbeat-timeout "
        "MS]\n"
        "                   [--log-level debug|info|warn|error|off]\n");
    std::exit(2);
}

double
parseNumber(const char *text, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || v < 0.0) {
        std::fprintf(stderr, "vtsim-coord: invalid %s '%s'\n", what,
                     text);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    namespace fabric = vtsim::fabric;
    namespace logging = vtsim::logging;

    std::string listen = "127.0.0.1:7774";
    std::string stats_json_path;
    fabric::CoordinatorConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--listen")
            listen = value();
        else if (arg == "--token")
            config.authToken = value();
        else if (arg == "--evlog")
            config.eventLogPath = value();
        else if (arg == "--stats-json")
            stats_json_path = value();
        else if (arg == "--tenant-rate")
            config.tenantRate = parseNumber(value(), "--tenant-rate");
        else if (arg == "--tenant-burst")
            config.tenantBurst = parseNumber(value(), "--tenant-burst");
        else if (arg == "--tenant-quota")
            config.tenantQuota = std::size_t(
                parseNumber(value(), "--tenant-quota"));
        else if (arg == "--max-backlog")
            config.maxBacklog =
                std::size_t(parseNumber(value(), "--max-backlog"));
        else if (arg == "--heartbeat-timeout")
            config.heartbeatTimeoutMs =
                int(parseNumber(value(), "--heartbeat-timeout"));
        else if (arg == "--log-level") {
            try {
                logging::setLevel(logging::parseLevel(value()));
            } catch (const std::exception &e) {
                std::fprintf(stderr, "vtsim-coord: %s\n", e.what());
                return 2;
            }
        } else
            usage();
    }

    try {
        const auto started = std::chrono::steady_clock::now();
        config.listen = fabric::parseHostPort(
            listen.find(':') == std::string::npos ? "127.0.0.1:" + listen
                                                  : listen);
        fabric::Coordinator coord(config);
        coord.start();
        g_coord = &coord;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::signal(SIGPIPE, SIG_IGN);

        logging::info("vtsim-coord", "listening on ",
                      config.listen.host, ":", coord.boundPort(),
                      config.authToken.empty() ? " (no token)"
                                               : " (token auth)");
        coord.serve();
        logging::info("vtsim-coord", "draining...");
        coord.shutdown();
        g_coord = nullptr;

        if (!stats_json_path.empty()) {
            std::ofstream os(stats_json_path);
            if (!os) {
                logging::error("vtsim-coord",
                               "cannot open stats-json file '",
                               stats_json_path, "'");
                return 1;
            }
            const vtsim::service::Json fabric_section =
                coord.statsJsonSection();
            vtsim::service::BatchMeta meta;
            meta.wallMs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              started)
                              .count() *
                          1e3;
            vtsim::service::writeStatsJson(os, {}, nullptr, meta,
                                           &fabric_section);
            logging::info("vtsim-coord", "wrote ", stats_json_path);
        }
    } catch (const std::exception &e) {
        logging::error("vtsim-coord", e.what());
        return 1;
    }
    return 0;
}
