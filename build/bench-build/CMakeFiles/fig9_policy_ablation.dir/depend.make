# Empty dependencies file for fig9_policy_ablation.
# This may be replaced when dependencies are built.
