/**
 * @file
 * SM <-> memory-partition interconnect: a crossbar with per-endpoint
 * output queues. Requests queue at their destination partition's port and
 * responses at their source SM's port; each port delivers a bounded
 * number of flits per cycle after a fixed traversal latency. Contention
 * is therefore per-port, as in the Fermi crossbar, not chip-global.
 */

#ifndef VTSIM_MEM_INTERCONNECT_HH
#define VTSIM_MEM_INTERCONNECT_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "mem/mem_request.hh"
#include "sim/sim_component.hh"
#include "stats/stats.hh"

namespace vtsim {

/** Interconnect parameters. */
struct NocParams
{
    std::uint32_t latency = 12;      ///< Traversal cycles, each way.
    std::uint32_t flitsPerCycle = 2; ///< Deliveries per port per cycle.
    std::uint32_t numSms = 1;
    std::uint32_t numPartitions = 1;
    /** Skip provably eventless tick()s (event-horizon fast-forward). */
    bool lazyTick = true;
};

class Interconnect : public SimComponent
{
  public:
    using Deliver = std::function<void(const MemRequest &, Cycle)>;
    using Router = std::function<std::uint32_t(Addr)>;

    explicit Interconnect(const NocParams &params);

    /** Wire the endpoints (Gpu does this once). */
    void setRequestSink(Deliver d) { toMem_ = std::move(d); }
    void setResponseSink(Deliver d) { toSm_ = std::move(d); }
    /** Address -> partition index mapping for request routing. */
    void setRouter(Router r) { router_ = std::move(r); }

    /** Enqueue an SM -> memory request at cycle @p now. */
    void sendRequest(const MemRequest &req, Cycle now);

    /** Enqueue a memory -> SM response at cycle @p now. */
    void sendResponse(const MemRequest &req, Cycle now);

    /** Deliver everything whose traversal completed by @p now, respecting
     *  per-port bandwidth. */
    void tick(Cycle now) override;

    bool idle() const;

    // --- Sharded-epoch staging (docs/ARCHITECTURE.md "Sharded
    // simulation"). Between beginEpochStaging() and mergeStaged(),
    // sendRequest()/sendResponse() append to per-source staging buffers
    // instead of the destination queues, so shard workers touching only
    // their own sources never contend on the shared queues. The epoch
    // length never exceeds the traversal latency, so nothing staged in
    // an epoch can mature inside it; mergeStaged() then folds the
    // buffers into the real queues in the canonical sequential arrival
    // order (send cycle, source index, per-source sequence) — the byte
    // stream save() emits is identical to the one the unsharded run
    // produces. -------------------------------------------------------------

    /** Enter staging mode (sharded epoch about to run). */
    void beginEpochStaging();

    /** Leave staging mode and fold every staged message into the real
     *  destination queues in canonical order. */
    void mergeStaged();

    /** Nothing staged right now (idle() does not see staged traffic). */
    bool stagingEmpty() const;

    /** Worker-local flit/stall counts from per-port drains; folded into
     *  the shared counters at the epoch barrier. */
    struct PortDelta
    {
        std::uint64_t reqFlits = 0;
        std::uint64_t respFlits = 0;
        std::uint64_t stallCycles = 0;
        /** Last cycle this port delivered a flit (epoch-end bound: the
         *  sequential machine is not all-idle before every queued
         *  message has been delivered, even one a write-back store
         *  absorbs without leaving its destination non-idle). */
        Cycle lastFlit = 0;
        bool sawFlit = false;
    };

    /**
     * Drain one destination port for cycle @p now — the per-port slice
     * of tick(), counting into @p delta instead of the shared stats.
     * During an epoch each port is owned by exactly one shard worker:
     * the request port of partition @p partition by the partition's
     * worker, the response port of SM @p sm by the SM's worker.
     */
    void drainRequestPort(std::uint32_t partition, Cycle now,
                          PortDelta &delta);
    void drainResponsePort(std::uint32_t sm, Cycle now, PortDelta &delta);

    /** Fold a worker's drain counts into the shared stats (barrier). */
    void applyPortDelta(const PortDelta &delta);

    bool requestPortEmpty(std::uint32_t partition) const
    { return reqQueues_[partition].empty(); }
    bool responsePortEmpty(std::uint32_t sm) const
    { return respQueues_[sm].empty(); }

    /**
     * Earliest cycle >= @p now at which tick() might deliver a flit
     * (event-horizon fast-forward protocol; see docs/ARCHITECTURE.md).
     * neverCycle when every queue is empty.
     */
    Cycle nextEventCycle(Cycle now) override { return computeNextEvent(now); }

    // SimComponent lifecycle. No settleTo: queue heads carry absolute
    // ready cycles and no per-cycle accounting is deferred.
    void reset() override;
    void save(Serializer &ser) const override;
    void restore(Deserializer &des) override;

    StatGroup &stats() { return stats_; }
    std::uint64_t requestFlits() const { return reqFlits_.value(); }
    std::uint64_t responseFlits() const { return respFlits_.value(); }

  private:
    struct InFlight
    {
        MemRequest req;
        Cycle readyAt;
    };

    void drain(std::deque<InFlight> &queue, const Deliver &deliver,
               Cycle now);
    Cycle computeNextEvent(Cycle now) const;
    static void saveQueues(Serializer &ser,
                           const std::vector<std::deque<InFlight>> &queues);
    static void restoreQueues(Deserializer &des,
                              std::vector<std::deque<InFlight>> &queues);

    /** One staged message: arrival order is (sentAt, source, position
     *  in the source's buffer). */
    struct Staged
    {
        MemRequest req;
        Cycle sentAt;
    };

    void mergeInto(std::vector<std::vector<Staged>> &staged, bool to_mem);

    NocParams params_;
    /** Lazy-tick horizon: while now < ffHorizon_ and nothing is sent,
     *  tick() cannot deliver a flit (all queue heads mature later) and
     *  returns immediately. No deferred accounting is needed: the
     *  bandwidth-stall counter only advances when a head is ready, and
     *  a ready head pins the horizon to the present. Rebuilt on demand,
     *  never checkpointed: its value is a function of how the run
     *  reached this state (tick cadence), not of the state itself. */
    Cycle ffHorizon_ = 0;
    bool staging_ = false;
    /** Staged requests by source SM / staged responses by source
     *  partition (a response's source is the partition its line address
     *  routes to — the one that produced it). */
    std::vector<std::vector<Staged>> stagedReq_;
    std::vector<std::vector<Staged>> stagedResp_;
    /** One request queue per destination partition. */
    std::vector<std::deque<InFlight>> reqQueues_;
    /** One response queue per destination SM. */
    std::vector<std::deque<InFlight>> respQueues_;
    Deliver toMem_;
    Deliver toSm_;
    Router router_;

    StatGroup stats_;
    Counter reqFlits_;
    Counter respFlits_;
    Counter stallCycles_; ///< Port-cycles a ready flit waited on bw.
};

} // namespace vtsim

#endif // VTSIM_MEM_INTERCONNECT_HH
