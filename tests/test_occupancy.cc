/**
 * @file
 * Unit tests for the static occupancy calculator / limiter classifier.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "isa/kernel_builder.hh"
#include "occupancy/occupancy.hh"

namespace vtsim {
namespace {

Kernel
kernelWith(std::uint32_t regs, std::uint32_t shared)
{
    KernelBuilder kb("k");
    kb.minRegs(regs).shared(shared).movi(0, 1).exit();
    return kb.build();
}

LaunchParams
launchOf(std::uint32_t cta_threads, std::uint32_t grid = 10000)
{
    LaunchParams lp;
    lp.cta = Dim3(cta_threads);
    lp.grid = Dim3(grid);
    return lp;
}

TEST(Occupancy, CtaSlotLimited)
{
    // 64-thread CTAs, tiny resources: 8 CTA slots bind on Fermi.
    const auto r = computeOccupancy(GpuConfig::fermiLike(),
                                    kernelWith(8, 0), launchOf(64));
    EXPECT_EQ(r.limiter, OccupancyLimiter::CtaSlots);
    EXPECT_EQ(r.ctasPerSm, 8u);
    EXPECT_GT(r.ctasCapacityOnly, 8u);
    EXPECT_TRUE(r.schedulingLimited());
    EXPECT_NEAR(r.warpOccupancy, 8.0 * 2 / 48, 1e-9);
}

TEST(Occupancy, WarpSlotLimited)
{
    // 256-thread CTAs (8 warps): 48/8 = 6 CTAs by warps, slots allow 8.
    const auto r = computeOccupancy(GpuConfig::fermiLike(),
                                    kernelWith(8, 0), launchOf(256));
    EXPECT_EQ(r.limiter, OccupancyLimiter::WarpSlots);
    EXPECT_EQ(r.ctasPerSm, 6u);
}

TEST(Occupancy, RegisterLimited)
{
    // 40 regs * 32 lanes = 1280/warp; 8 warps/CTA = 10240 regs ->
    // 3 CTAs of 32768.
    const auto r = computeOccupancy(GpuConfig::fermiLike(),
                                    kernelWith(40, 0), launchOf(256));
    EXPECT_EQ(r.limiter, OccupancyLimiter::Registers);
    EXPECT_EQ(r.ctasPerSm, 3u);
    EXPECT_FALSE(r.schedulingLimited());
    EXPECT_EQ(r.ctasCapacityOnly, 3u);
}

TEST(Occupancy, SharedMemLimited)
{
    // 12 KB of shared per CTA -> 4 CTAs of 48 KB.
    const auto r = computeOccupancy(GpuConfig::fermiLike(),
                                    kernelWith(8, 12 * 1024),
                                    launchOf(256));
    EXPECT_EQ(r.limiter, OccupancyLimiter::SharedMem);
    EXPECT_EQ(r.ctasPerSm, 4u);
    EXPECT_FALSE(r.schedulingLimited());
}

TEST(Occupancy, ThreadSlotLimited)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.maxThreadsPerSm = 512;
    cfg.maxCtasPerSm = 16;
    const auto r = computeOccupancy(cfg, kernelWith(8, 0), launchOf(96));
    // 512 / 96 = 5 CTAs by threads; warps: 48/3 = 16.
    EXPECT_EQ(r.limiter, OccupancyLimiter::ThreadSlots);
    EXPECT_EQ(r.ctasPerSm, 5u);
}

TEST(Occupancy, SmallGridCapsEverything)
{
    const GpuConfig cfg = GpuConfig::fermiLike(); // 15 SMs
    const auto r = computeOccupancy(cfg, kernelWith(8, 0),
                                    launchOf(64, 15));
    EXPECT_EQ(r.ctasPerSm, 1u);
    EXPECT_EQ(r.ctasCapacityOnly, 1u);
}

TEST(Occupancy, OversizedCtaIsFatal)
{
    // 2 KB of registers per thread can't fit.
    EXPECT_THROW(computeOccupancy(GpuConfig::fermiLike(),
                                  kernelWith(600, 0), launchOf(256)),
                 FatalError);
}

TEST(Occupancy, UtilizationNumbers)
{
    const auto r = computeOccupancy(GpuConfig::fermiLike(),
                                    kernelWith(16, 1024), launchOf(64));
    // 8 CTAs (cta-slot limited), 2 warps each.
    // regs/CTA = 2 * 512 = 1024; util = 8 * 1024 / 32768 = 0.25.
    EXPECT_EQ(r.ctasPerSm, 8u);
    EXPECT_NEAR(r.registerUtilization, 0.25, 1e-9);
    EXPECT_NEAR(r.sharedMemUtilization, 8.0 * 1024 / (48 * 1024), 1e-9);
    EXPECT_GT(r.registerUtilizationVt, r.registerUtilization);
}

TEST(Occupancy, SchedulingLimitHelpers)
{
    EXPECT_TRUE(isSchedulingLimit(OccupancyLimiter::WarpSlots));
    EXPECT_TRUE(isSchedulingLimit(OccupancyLimiter::CtaSlots));
    EXPECT_TRUE(isSchedulingLimit(OccupancyLimiter::ThreadSlots));
    EXPECT_FALSE(isSchedulingLimit(OccupancyLimiter::Registers));
    EXPECT_FALSE(isSchedulingLimit(OccupancyLimiter::SharedMem));
}

TEST(Occupancy, LimiterNames)
{
    EXPECT_EQ(toString(OccupancyLimiter::WarpSlots), "warp-slots");
    EXPECT_EQ(toString(OccupancyLimiter::Registers), "registers");
    EXPECT_EQ(toString(OccupancyLimiter::SharedMem), "shared-mem");
}

TEST(Occupancy, MultiplierRaisesSchedulingBounds)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.schedLimitMultiplier = 2;
    const auto r = computeOccupancy(cfg, kernelWith(8, 0), launchOf(64));
    EXPECT_EQ(r.ctasByCtaSlots, 16u);
    EXPECT_EQ(r.ctasByWarpSlots, 48u);
}

} // namespace
} // namespace vtsim
