file(REMOVE_RECURSE
  "libvtsim.a"
)
