#include "parallel_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string_view>
#include <thread>

namespace vtsim::bench {

namespace {

unsigned
clampJobs(long n)
{
    return n < 1 ? 1u : static_cast<unsigned>(n);
}

} // namespace

unsigned
resolveJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            return clampJobs(std::atol(argv[i + 1]));
        if (arg.substr(0, 7) == "--jobs=")
            return clampJobs(std::atol(argv[i] + 7));
    }
    if (const char *env = std::getenv("VTSIM_JOBS"))
        return clampJobs(std::atol(env));
    return clampJobs(std::thread::hardware_concurrency());
}

std::vector<RunResult>
runAll(const std::vector<RunSpec> &specs, unsigned jobs)
{
    std::vector<RunResult> results(specs.size());
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= specs.size())
                return;
            try {
                results[i] = runWorkload(specs[i].workload,
                                         specs[i].config, specs[i].scale);
            } catch (...) {
                const std::lock_guard<std::mutex> guard(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    const auto start = std::chrono::steady_clock::now();
    const unsigned pool_size = static_cast<unsigned>(
        std::min<std::size_t>(jobs, specs.size()));
    if (pool_size <= 1) {
        worker(); // Sequential: no threads, easiest to debug.
    } else {
        std::vector<std::thread> pool;
        pool.reserve(pool_size);
        for (unsigned t = 0; t < pool_size; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    if (first_error)
        std::rethrow_exception(first_error);

    std::uint64_t cycles = 0;
    std::uint64_t thread_instructions = 0;
    for (const RunResult &r : results) {
        cycles += r.stats.cycles;
        thread_instructions += r.stats.threadInstructions;
    }
    const double safe_wall = wall > 0.0 ? wall : 1e-9;
    std::fprintf(stderr,
                 "[parallel-runner] %zu runs, jobs=%u: wall %.3fs, "
                 "%.1f Kcyc/s, %.2f MIPS\n",
                 specs.size(), pool_size ? pool_size : 1, wall,
                 cycles / safe_wall / 1e3,
                 thread_instructions / safe_wall / 1e6);
    return results;
}

} // namespace vtsim::bench
