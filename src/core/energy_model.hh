/**
 * @file
 * Event-based energy accounting for a kernel launch — the stand-in for
 * the paper's CACTI/McPAT-derived overhead numbers. Per-event energies
 * are order-of-magnitude constants for a 40 nm-class GPU; what the
 * model is for is *relative* comparison (baseline vs Virtual Thread,
 * including the energy VT's context swaps add), not absolute joules.
 */

#ifndef VTSIM_CORE_ENERGY_MODEL_HH
#define VTSIM_CORE_ENERGY_MODEL_HH

#include <ostream>

#include "config/gpu_config.hh"
#include "gpu/gpu.hh"

namespace vtsim {

/** Per-event energies in picojoules. */
struct EnergyParams
{
    double warpInstruction = 60.0; ///< Fetch/decode/RF/execute average.
    double l1Access = 50.0;        ///< Per L1 lookup (hit or miss).
    double l2Access = 150.0;       ///< Per L2 lookup.
    double dramPerByte = 20.0;     ///< Per byte moved on the DRAM bus.
    double nocPerResponse = 200.0; ///< Per 128B flit across the crossbar.
    double vtSwapPerByte = 1.0;    ///< SRAM move of saved sched state.
    double staticPerSmCycle = 15.0;///< Leakage+clock per SM per cycle.
};

/** Energy split by component, in picojoules. */
struct EnergyBreakdown
{
    double core = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double dram = 0.0;
    double noc = 0.0;
    double vtSwap = 0.0;
    double staticEnergy = 0.0;

    double
    total() const
    {
        return core + l1 + l2 + dram + noc + vtSwap + staticEnergy;
    }

    /** Energy-delay product (pJ x cycles). */
    double edp(Cycle cycles) const { return total() * cycles; }
};

/**
 * Estimate the energy of one launch from its statistics.
 *
 * @param stats The launch's KernelStats.
 * @param config The machine that produced them.
 * @param swap_bytes_per_cta Scheduling-state bytes one swap moves
 *        (from computeOverhead().bytesPerCtaContext).
 * @param params Per-event energies.
 */
EnergyBreakdown estimateEnergy(const KernelStats &stats,
                               const GpuConfig &config,
                               std::uint32_t swap_bytes_per_cta,
                               const EnergyParams &params = {});

/** Print the breakdown as labelled rows (uJ). */
void printEnergy(std::ostream &os, const EnergyBreakdown &energy);

} // namespace vtsim

#endif // VTSIM_CORE_ENERGY_MODEL_HH
