/**
 * @file
 * Memory-trace record/replay (vtsim-mtrace-v1): a replayed trace must
 * drive the Coalescer->Cache->NoC->MemoryPartition->Dram pipeline to
 * bit-identical cache/DRAM statistics without executing a single
 * instruction; malformed or truncated trace files must be rejected
 * with a clear FatalError, never a crash; and checkpoints taken in one
 * simulation mode must refuse to resume in the other.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "mem/mtrace.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

GpuConfig
traceConfig()
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.numSms = 4;
    cfg.numMemPartitions = 2;
    cfg.maxCycles = 5'000'000;
    cfg.fastForwardEnabled = true;
    return cfg;
}

std::string
tempPath(const std::string &stem)
{
    return testing::TempDir() + stem;
}

KernelStats
launchOn(Gpu &gpu, const std::string &name)
{
    auto wl = makeWorkload(name, 0);
    const Kernel k = wl->buildKernel();
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(k, lp);
    EXPECT_TRUE(wl->verify(gpu.memory())) << name;
    return stats;
}

/** The cycle count and every memory-hierarchy counter, bit for bit.
 *  (Issue-side counters legitimately differ: a replay executes
 *  nothing, so it issues nothing.) */
void
expectIdenticalMemoryStats(const KernelStats &func, const KernelStats &rep,
                           const std::string &context)
{
    EXPECT_EQ(func.cycles, rep.cycles) << context;
    EXPECT_EQ(func.l1Hits, rep.l1Hits) << context;
    EXPECT_EQ(func.l1Misses, rep.l1Misses) << context;
    EXPECT_EQ(func.l2Hits, rep.l2Hits) << context;
    EXPECT_EQ(func.l2Misses, rep.l2Misses) << context;
    EXPECT_EQ(func.dramRowHits, rep.dramRowHits) << context;
    EXPECT_EQ(func.dramRowMisses, rep.dramRowMisses) << context;
    EXPECT_EQ(func.dramBytes, rep.dramBytes) << context;
    EXPECT_EQ(rep.warpInstructions, 0u) << context;
    EXPECT_EQ(rep.ctasCompleted, 0u) << context;
}

std::vector<std::uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::vector<std::uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

// ---------------------------------------------------------------------------
// Record -> replay equivalence.
// ---------------------------------------------------------------------------

class MtraceRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(MtraceRoundTrip, ReplayReproducesMemoryStats)
{
    const std::string wl = GetParam();
    GpuConfig cfg = traceConfig();
    for (const bool vt : {false, true}) {
        cfg.vtEnabled = vt;
        const std::string tag = wl + (vt ? "/vt" : "/baseline");
        const std::string trace = tempPath("mtr_" + wl +
                                           (vt ? "_vt" : "_base"));

        Gpu rec(cfg);
        rec.enableMtraceRecord(trace);
        const KernelStats func = launchOn(rec, wl);

        // Recording must not perturb the run itself.
        Gpu plain(cfg);
        const KernelStats undisturbed = launchOn(plain, wl);
        EXPECT_EQ(func.cycles, undisturbed.cycles) << tag;
        EXPECT_EQ(func.l2Misses, undisturbed.l2Misses) << tag;

        Gpu rep(cfg);
        const KernelStats replayed = rep.replayTrace(trace);
        expectIdenticalMemoryStats(func, replayed, tag);

        // Replay composes with --sim-threads: the sharded epoch driver
        // must reproduce the sequential replay bit for bit.
        Gpu sharded(cfg);
        sharded.setSimThreads(4);
        const KernelStats sharded_rep = sharded.replayTrace(trace);
        expectIdenticalMemoryStats(func, sharded_rep, tag + "/sharded");

        std::remove(trace.c_str());
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, MtraceRoundTrip,
                         ::testing::Values("vecadd", "reduce", "stencil",
                                           "histogram"));

TEST(Mtrace, HeaderAndMarkersRecorded)
{
    const std::string trace = tempPath("mtr_markers");
    GpuConfig cfg = traceConfig();
    Gpu gpu(cfg);
    gpu.enableMtraceRecord(trace);
    launchOn(gpu, "reduce"); // Has CTA-wide barriers.

    MtraceReader reader;
    reader.load(trace);
    EXPECT_EQ(reader.header().numSms, cfg.numSms);
    EXPECT_EQ(reader.header().numMemPartitions, cfg.numMemPartitions);
    EXPECT_EQ(reader.header().l1LineSize, cfg.l1LineSize);
    EXPECT_EQ(reader.header().l2LineSize, cfg.l2LineSize);
    EXPECT_GT(reader.totalAccesses(), 0u);
    EXPECT_GT(reader.totalBarriers(), 0u);
    // Every access slice is cycle-monotonic and within its SM.
    for (std::uint32_t s = 0; s < cfg.numSms; ++s) {
        Cycle prev = 0;
        for (const MtraceAccess &a : reader.accesses(s)) {
            EXPECT_EQ(a.sm, s);
            EXPECT_GE(a.cycle, prev);
            prev = a.cycle;
        }
    }
    std::remove(trace.c_str());
}

TEST(Mtrace, RecordForcesSequentialSimulation)
{
    const std::string trace = tempPath("mtr_seq");
    GpuConfig cfg = traceConfig();
    Gpu gpu(cfg);
    gpu.setSimThreads(4); // Record must override this to 1.
    gpu.enableMtraceRecord(trace);
    const KernelStats rec = launchOn(gpu, "vecadd");

    Gpu plain(cfg);
    const KernelStats ref = launchOn(plain, "vecadd");
    EXPECT_EQ(rec.cycles, ref.cycles);
    std::remove(trace.c_str());
}

// ---------------------------------------------------------------------------
// Misuse guards.
// ---------------------------------------------------------------------------

TEST(Mtrace, RecordAndReplayAreExclusive)
{
    const std::string trace = tempPath("mtr_excl");
    GpuConfig cfg = traceConfig();
    {
        Gpu gpu(cfg);
        gpu.enableMtraceRecord(trace);
        launchOn(gpu, "vecadd");
    }
    Gpu gpu(cfg);
    gpu.enableMtraceRecord(tempPath("mtr_excl_out"));
    EXPECT_THROW(gpu.replayTrace(trace), FatalError);
    std::remove(trace.c_str());
}

TEST(Mtrace, RecordRejectsCheckpointCadence)
{
    GpuConfig cfg = traceConfig();
    Gpu gpu(cfg);
    gpu.setCheckpoint(tempPath("mtr_cadence_ckpt"), 100);
    gpu.enableMtraceRecord(tempPath("mtr_cadence"));
    auto wl = makeWorkload("vecadd", 0);
    const Kernel k = wl->buildKernel();
    const LaunchParams lp = wl->prepare(gpu.memory());
    EXPECT_THROW(gpu.launch(k, lp), FatalError);
}

TEST(Mtrace, ReplayRejectsWrongMachineShape)
{
    const std::string trace = tempPath("mtr_shape");
    GpuConfig cfg = traceConfig();
    {
        Gpu gpu(cfg);
        gpu.enableMtraceRecord(trace);
        launchOn(gpu, "vecadd");
    }
    GpuConfig other = cfg;
    other.numSms += 1;
    Gpu gpu(other);
    EXPECT_THROW(gpu.replayTrace(trace), FatalError);
    std::remove(trace.c_str());
}

// ---------------------------------------------------------------------------
// Checkpointing across modes.
// ---------------------------------------------------------------------------

TEST(Mtrace, FunctionalCheckpointRefusesReplayResume)
{
    GpuConfig cfg = traceConfig();
    const std::string trace = tempPath("mtr_mode_trace");
    const std::string ckpt = tempPath("mtr_mode_func_ckpt");
    {
        Gpu gpu(cfg);
        gpu.enableMtraceRecord(trace);
        launchOn(gpu, "vecadd");
    }
    {
        // A mid-run functional checkpoint (cadence boundaries).
        Gpu gpu(cfg);
        gpu.setCheckpoint(ckpt, 50);
        launchOn(gpu, "vecadd");
    }
    Gpu gpu(cfg);
    gpu.restoreCheckpoint(ckpt);
    EXPECT_THROW(gpu.replayTrace(trace), FatalError);
    std::remove(trace.c_str());
    std::remove(ckpt.c_str());
}

TEST(Mtrace, ReplayCheckpointRefusesFunctionalResume)
{
    GpuConfig cfg = traceConfig();
    const std::string trace = tempPath("mtr_rmode_trace");
    const std::string ckpt = tempPath("mtr_rmode_ckpt");
    {
        Gpu gpu(cfg);
        gpu.enableMtraceRecord(trace);
        launchOn(gpu, "vecadd");
    }
    {
        Gpu gpu(cfg);
        gpu.setCheckpoint(ckpt, 50); // Mid-replay cadence checkpoints.
        gpu.replayTrace(trace);
    }
    Gpu gpu(cfg);
    const LaunchParams lp = gpu.restoreCheckpoint(ckpt);
    auto wl = makeWorkload("vecadd", 0);
    const Kernel k = wl->buildKernel();
    EXPECT_THROW(gpu.launch(k, lp), FatalError);
    std::remove(trace.c_str());
    std::remove(ckpt.c_str());
}

TEST(Mtrace, ReplayResumesFromCheckpointBitIdentically)
{
    GpuConfig cfg = traceConfig();
    const std::string trace = tempPath("mtr_resume_trace");
    const std::string ckpt = tempPath("mtr_resume_ckpt");
    {
        Gpu gpu(cfg);
        gpu.enableMtraceRecord(trace);
        launchOn(gpu, "stencil");
    }
    Gpu straight(cfg);
    const KernelStats uninterrupted = straight.replayTrace(trace);

    // A cadence-checkpointing replay must not perturb the run, and its
    // last mid-run image must resume to whole-run-identical stats.
    Gpu ck(cfg);
    ck.setCheckpoint(ckpt, uninterrupted.cycles / 2);
    const KernelStats checkpointing = ck.replayTrace(trace);
    expectIdenticalMemoryStats(uninterrupted, checkpointing, "ckpt run");

    Gpu resumed(cfg);
    resumed.restoreCheckpoint(ckpt);
    const KernelStats rest = resumed.replayTrace(trace);
    expectIdenticalMemoryStats(uninterrupted, rest, "resumed");

    std::remove(trace.c_str());
    std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------------------
// Malformed traces: clear rejection, never a crash.
// ---------------------------------------------------------------------------

class MtraceMalformed : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        trace_ = tempPath("mtr_malformed");
        GpuConfig cfg = traceConfig();
        Gpu gpu(cfg);
        gpu.enableMtraceRecord(trace_);
        launchOn(gpu, "vecadd");
        bytes_ = readBytes(trace_);
        ASSERT_GT(bytes_.size(), 64u);
    }

    void TearDown() override { std::remove(trace_.c_str()); }

    /** Expect the mangled bytes to be rejected with a FatalError. */
    void
    expectRejected(const std::vector<std::uint8_t> &mangled,
                   const std::string &what)
    {
        writeBytes(trace_, mangled);
        MtraceReader reader;
        EXPECT_THROW(reader.load(trace_), FatalError) << what;
    }

    std::string trace_;
    std::vector<std::uint8_t> bytes_;
};

TEST_F(MtraceMalformed, EveryTruncationRejected)
{
    // Every header prefix, plus a sweep of cut points through the
    // records (stepped, to keep the test fast) and the final seal.
    std::vector<std::size_t> cuts;
    for (std::size_t n = 0; n < 64 && n < bytes_.size(); ++n)
        cuts.push_back(n);
    for (std::size_t n = 64; n < bytes_.size(); n += 97)
        cuts.push_back(n);
    cuts.push_back(bytes_.size() - 1);
    for (const std::size_t n : cuts) {
        expectRejected(
            std::vector<std::uint8_t>(bytes_.begin(), bytes_.begin() + n),
            "truncated to " + std::to_string(n) + " bytes");
    }
}

TEST_F(MtraceMalformed, BadMagicAndVersionRejected)
{
    auto bad = bytes_;
    bad[0] ^= 0xff;
    expectRejected(bad, "corrupt magic");

    bad = bytes_;
    bad[8] = 0xfe; // version LSB
    expectRejected(bad, "unsupported version");
}

TEST_F(MtraceMalformed, CorruptHeaderFieldsRejected)
{
    auto bad = bytes_;
    bad[12] = bad[13] = bad[14] = bad[15] = 0; // numSms = 0
    expectRejected(bad, "zero SMs");

    bad = bytes_;
    bad[20] = 3; // l1LineSize LSB: not a power of two
    expectRejected(bad, "non-power-of-two line size");
}

TEST_F(MtraceMalformed, TrailingGarbageRejected)
{
    auto bad = bytes_;
    bad.push_back(0x42);
    expectRejected(bad, "trailing bytes after the end seal");
}

TEST_F(MtraceMalformed, MissingEndSealRejected)
{
    // Drop the end record (1-byte kind + 8-byte count).
    expectRejected(std::vector<std::uint8_t>(bytes_.begin(),
                                             bytes_.end() - 9),
                   "missing end seal");
}

TEST_F(MtraceMalformed, GarbageFileRejected)
{
    expectRejected({'n', 'o', 't', 'a', 't', 'r', 'a', 'c', 'e'},
                   "garbage file");
    MtraceReader reader;
    EXPECT_THROW(reader.load(trace_ + ".does-not-exist"), FatalError);
}

} // namespace
} // namespace vtsim
