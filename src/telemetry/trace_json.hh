/**
 * @file
 * Perfetto / Chrome trace-event exporter (the `trace.json` format
 * consumed by ui.perfetto.dev and chrome://tracing).
 *
 * The writer maps the simulator onto the trace-event process/thread
 * model: each SM is a "process" (pid = SM id) whose "threads" are HW
 * CTA slots, and each DRAM channel is a process (pid = numSms +
 * channel) whose threads are banks. Virtual Thread residency becomes
 * nested duration events per slot — "active", "inactive", "swap-out",
 * "swap-in" — so the VT state machine is directly visible on the
 * timeline; barrier releases, CTA admission/finish and DRAM row
 * hits/misses are instant events. Timestamps are simulated cycles
 * reported as microseconds (1 cycle == 1 us), so the Perfetto time axis
 * reads directly in cycles.
 *
 * Unlike the textual Trace facade (a process-global singleton, see
 * common/trace.hh), a TraceJsonWriter is per-Gpu state plumbed to
 * components by pointer — hermetic per-job Gpus on the parallel
 * runner's thread pool can each carry their own writer safely.
 */

#ifndef VTSIM_TELEMETRY_TRACE_JSON_HH
#define VTSIM_TELEMETRY_TRACE_JSON_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vtsim::telemetry {

class TraceJsonWriter
{
  public:
    /** Write to @p path (opened now, footer written on destruction). */
    explicit TraceJsonWriter(const std::string &path);

    /** Write to an existing stream (not owned). */
    explicit TraceJsonWriter(std::ostream &os);

    virtual ~TraceJsonWriter();
    TraceJsonWriter(const TraceJsonWriter &) = delete;
    TraceJsonWriter &operator=(const TraceJsonWriter &) = delete;

    /** Emit the closing bracket; further events are dropped. */
    void close();

    /** Name the track-model process @p pid (metadata event). */
    void processName(std::uint32_t pid, const std::string &name);

    /** Name thread @p tid of process @p pid (metadata event). */
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name);

    /** Open a duration event ("B"). Nest strictly within the track.
     *  Virtual so TraceStage can buffer instead of write. */
    virtual void begin(std::uint32_t pid, std::uint32_t tid, Cycle cycle,
                       const std::string &name,
                       const std::string &category);

    /** Close the innermost open duration event ("E"). */
    virtual void end(std::uint32_t pid, std::uint32_t tid, Cycle cycle);

    /** Zero-duration marker ("i", thread scope). */
    virtual void instant(std::uint32_t pid, std::uint32_t tid, Cycle cycle,
                         const std::string &name,
                         const std::string &category);

    /** Counter track sample ("C"). */
    virtual void counter(std::uint32_t pid, Cycle cycle,
                         const std::string &name, std::uint64_t value);

  protected:
    /** Subclass (TraceStage) that never opens a sink. */
    TraceJsonWriter() = default;

  private:
    void event(const std::string &json);

    std::unique_ptr<std::ofstream> file_;
    std::ostream *os_ = nullptr;
    bool open_ = false;
    bool firstEvent_ = true;
};

/**
 * A per-component staging buffer behind the TraceJsonWriter interface
 * (sharded simulation): during a parallel epoch each component writes
 * into its own stage, and the epoch barrier replays every stage into
 * the real writer sorted by (cycle, rank, seq). The rank encodes the
 * within-cycle emission order of the sequential run (admission scan,
 * then partitions, then SM ticks — see Gpu::attachTraceJson), so the
 * merged file is byte-identical to the sequential one.
 */
class TraceStage final : public TraceJsonWriter
{
  public:
    struct Event
    {
        Cycle cycle;
        std::uint32_t rank;
        std::uint64_t seq; ///< Emission order within this stage.
        std::uint8_t kind; ///< 0 begin, 1 end, 2 instant, 3 counter.
        std::uint32_t pid;
        std::uint32_t tid;
        std::string name;
        std::string cat;
        std::uint64_t value;
    };

    /** The within-cycle rank of the component that writes this stage;
     *  the Gpu epoch driver retargets it around admission phases. */
    void setRank(std::uint32_t rank) { rank_ = rank; }

    void begin(std::uint32_t pid, std::uint32_t tid, Cycle cycle,
               const std::string &name, const std::string &cat) override
    { push({cycle, rank_, seq_++, 0, pid, tid, name, cat, 0}); }

    void end(std::uint32_t pid, std::uint32_t tid, Cycle cycle) override
    { push({cycle, rank_, seq_++, 1, pid, tid, {}, {}, 0}); }

    void instant(std::uint32_t pid, std::uint32_t tid, Cycle cycle,
                 const std::string &name, const std::string &cat) override
    { push({cycle, rank_, seq_++, 2, pid, tid, name, cat, 0}); }

    void counter(std::uint32_t pid, Cycle cycle, const std::string &name,
                 std::uint64_t value) override
    { push({cycle, rank_, seq_++, 3, pid, 0, name, {}, value}); }

    bool empty() const { return events_.empty(); }

    /** Move the buffered events out (the stage resets for the next
     *  epoch); the caller merges stages and replays into the sink. */
    std::vector<Event> drain()
    {
        std::vector<Event> out = std::move(events_);
        events_.clear();
        seq_ = 0;
        return out;
    }

    /** Replay one merged event into the real writer. */
    static void replay(const Event &e, TraceJsonWriter &sink);

  private:
    void push(Event e) { events_.push_back(std::move(e)); }

    std::uint32_t rank_ = 0;
    std::uint64_t seq_ = 0;
    std::vector<Event> events_;
};

} // namespace vtsim::telemetry

#endif // VTSIM_TELEMETRY_TRACE_JSON_HH
