/**
 * @file
 * The top-level simulated GPU — the public API of vtsim. Construct one
 * with a GpuConfig, fill device memory through memory(), then launch()
 * kernels and read back results and statistics.
 */

#ifndef VTSIM_GPU_GPU_HH
#define VTSIM_GPU_GPU_HH

#include <memory>
#include <ostream>
#include <vector>

#include "config/gpu_config.hh"
#include "func/global_memory.hh"
#include "isa/kernel.hh"
#include "mem/interconnect.hh"
#include "mem/memory_partition.hh"
#include "sm/sm_core.hh"

namespace vtsim {

/** Aggregate statistics of one kernel launch. */
struct KernelStats
{
    Cycle cycles = 0;
    std::uint64_t warpInstructions = 0;
    std::uint64_t threadInstructions = 0;
    std::uint64_t ctasCompleted = 0;
    /** Warp instructions per cycle, summed over SMs. */
    double ipc = 0.0;

    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;
    std::uint64_t dramBytes = 0;

    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;

    StallBreakdown stalls;

    double l1HitRate() const
    {
        const auto total = l1Hits + l1Misses;
        return total ? double(l1Hits) / total : 0.0;
    }

    double l2HitRate() const
    {
        const auto total = l2Hits + l2Misses;
        return total ? double(l2Hits) / total : 0.0;
    }
};

class Gpu
{
  public:
    explicit Gpu(const GpuConfig &config);

    /** Device global memory (allocate and fill before launching). */
    GlobalMemory &memory() { return gmem_; }

    /**
     * Launch @p kernel over @p launch and simulate to completion.
     * @return The launch's statistics.
     * @throws FatalError on invalid configuration or watchdog expiry.
     */
    KernelStats launch(const Kernel &kernel, const LaunchParams &launch);

    /** Invalidate all caches (between unrelated kernels). */
    void flushCaches();

    const GpuConfig &config() const { return config_; }
    std::uint32_t numSms() const { return sms_.size(); }
    SmCore &sm(std::uint32_t i) { return *sms_.at(i); }
    MemoryPartition &partition(std::uint32_t i)
    { return *partitions_.at(i); }
    Interconnect &noc() { return noc_; }

    /** Total cycles simulated across all launches. */
    Cycle totalCycles() const { return cycle_; }

    /** Cycles covered by event-horizon jumps rather than ticks (counts
     *  toward totalCycles; a measure of how much work skipping saved). */
    Cycle fastForwardedCycles() const { return fastForwardedCycles_; }

    /**
     * Dump every component's statistics (SMs, VT managers, L1s, L2
     * slices, DRAM channels, NoC) as `group.stat value` lines — the
     * gem5-style post-simulation record.
     */
    void dumpStats(std::ostream &os);

  private:
    bool allIdle() const;
    std::uint32_t partitionOf(Addr line_addr) const;

    GpuConfig config_;
    GlobalMemory gmem_;
    Interconnect noc_;
    std::vector<std::unique_ptr<MemoryPartition>> partitions_;
    std::vector<std::unique_ptr<SmCore>> sms_;
    Cycle cycle_ = 0;
    Cycle fastForwardedCycles_ = 0;
};

} // namespace vtsim

#endif // VTSIM_GPU_GPU_HH
