/**
 * @file
 * Scheduler comparison: run one workload across every warp-scheduler
 * policy, with and without Virtual Thread, and print the IPC matrix —
 * a downstream-user view of FIG-7.
 *
 * Usage: scheduler_comparison [benchmark] (default: stencil)
 */

#include <cstdio>
#include <string>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
try {
    using namespace vtsim;

    const std::string name = argc > 1 ? argv[1] : "stencil";
    std::printf("workload: %s\n\n", name.c_str());
    std::printf("%-12s %12s %12s %10s %8s\n", "scheduler", "base-IPC",
                "vt-IPC", "speedup", "swaps");

    for (auto policy : {SchedulerPolicy::LooseRoundRobin,
                        SchedulerPolicy::GreedyThenOldest,
                        SchedulerPolicy::TwoLevel}) {
        KernelStats base_stats, vt_stats;
        for (bool vt_on : {false, true}) {
            GpuConfig cfg = GpuConfig::fermiLike();
            cfg.schedulerPolicy = policy;
            cfg.vtEnabled = vt_on;
            auto wl = makeWorkload(name);
            const Kernel kernel = wl->buildKernel();
            Gpu gpu(cfg);
            const LaunchParams lp = wl->prepare(gpu.memory());
            const KernelStats stats = gpu.launch(kernel, lp);
            if (!wl->verify(gpu.memory()))
                VTSIM_FATAL("wrong results under ", toString(policy));
            (vt_on ? vt_stats : base_stats) = stats;
        }
        std::printf("%-12s %12.3f %12.3f %9.2fx %8llu\n",
                    toString(policy).c_str(), base_stats.ipc,
                    vt_stats.ipc,
                    double(base_stats.cycles) / vt_stats.cycles,
                    (unsigned long long)vt_stats.swapOuts);
    }
    return 0;
} catch (const vtsim::FatalError &e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
}
