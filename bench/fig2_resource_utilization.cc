/**
 * @file
 * FIG-2 (motivation): on-chip resource population under the baseline
 * scheduling limit versus capacity-only admission (what VT achieves).
 * The shape to reproduce: scheduling-limited kernels leave most of the
 * register file and shared memory idle on the baseline.
 */

#include <cstdio>

#include "bench_common.hh"
#include "occupancy/occupancy.hh"

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-2", "on-chip resource utilisation (static)");
    const GpuConfig cfg = GpuConfig::fermiLike();

    std::printf("%-14s %9s | %9s %9s | %9s %9s\n", "benchmark",
                "warp-occ", "reg-base", "reg-vt", "shm-base", "shm-vt");
    double reg_base_sum = 0, reg_vt_sum = 0;
    int n = 0;
    for (const auto &name : benchmarkNames()) {
        auto wl = makeWorkload(name, benchScale);
        const Kernel k = wl->buildKernel();
        GlobalMemory scratch;
        const LaunchParams lp = wl->prepare(scratch);
        const auto r = computeOccupancy(cfg, k, lp);
        std::printf("%-14s %8.1f%% | %8.1f%% %8.1f%% | %8.1f%% %8.1f%%\n",
                    name.c_str(), 100 * r.warpOccupancy,
                    100 * r.registerUtilization,
                    100 * r.registerUtilizationVt,
                    100 * r.sharedMemUtilization,
                    100 * r.sharedMemUtilizationVt);
        reg_base_sum += r.registerUtilization;
        reg_vt_sum += r.registerUtilizationVt;
        ++n;
    }
    std::printf("\nMEAN register-file population: baseline %.1f%% -> "
                "capacity-admitted %.1f%%\n", 100 * reg_base_sum / n,
                100 * reg_vt_sum / n);
    return 0;
}
