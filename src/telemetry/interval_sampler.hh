/**
 * @file
 * Interval time-series sampler: emits per-interval deltas of every
 * registered statistic as JSON Lines, one object per sample boundary.
 *
 * Sample boundaries are scheduled wakeups: Gpu::launch clamps the
 * event-horizon fast-forward jump to the next boundary and calls
 * sample() whenever the clock reaches it, so the emitted series is
 * bit-identical whether `fastForwardEnabled` is on or off (the skipped
 * idle cycles are bulk-accounted by SimComponent::settleTo before the
 * registry is read, and ScalarStat::sampleN reproduces the per-cycle
 * rounding sequence exactly).
 *
 * Line schema (deltas over the interval just ended; zero-delta entries
 * are omitted to keep lines small):
 *
 *   {"sample":3,"cycle":4000,"interval":1000,
 *    "stats":{"sm0.issue.issued":812,...},
 *    "dists":{"sm0.occupancy":{"count":1000,"sum":31744.0},...},
 *    "hists":{"sm0.vt.swap_stall_streak":{"total":2,"p50":16,"p95":24},...}}
 *
 * "cycle" is relative to the launch start; "interval" is the number of
 * cycles the deltas cover (the final sample may be shorter).
 */

#ifndef VTSIM_TELEMETRY_INTERVAL_SAMPLER_HH
#define VTSIM_TELEMETRY_INTERVAL_SAMPLER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hh"
#include "sim/serializer.hh"
#include "telemetry/stat_registry.hh"

namespace vtsim::telemetry {

class IntervalSampler
{
  public:
    /** Sample @p registry every @p interval cycles into @p os. */
    IntervalSampler(const StatRegistry &registry, Cycle interval,
                    std::ostream &os);

    /** Reset baselines at the start of a launch beginning at @p start. */
    void beginLaunch(Cycle start);

    /** Absolute cycle of the next sample boundary. */
    Cycle nextSampleAt() const { return nextSampleAt_; }

    /** Emit the sample whose boundary is @p now (must be exact). */
    void sample(Cycle now);

    /** Emit the trailing partial interval, if any, at launch end. */
    void finalSample(Cycle now);

    /**
     * Checkpoint the mid-launch cursor and delta baselines. restore()
     * asserts the interval matches, so a restored run's samples land on
     * the same boundaries and continue the uninterrupted run's series
     * from the restore point onward.
     */
    void save(Serializer &ser) const;
    void restore(Deserializer &des);

  private:
    struct HistBaseline
    {
        std::vector<std::uint64_t> buckets;
        std::uint64_t overflow = 0;
        std::uint64_t total = 0;
    };

    void captureBaseline();
    void emit(Cycle now);

    const StatRegistry &registry_;
    Cycle interval_;
    std::ostream &os_;

    Cycle launchStart_ = 0;
    Cycle lastSampleAt_ = 0;
    Cycle nextSampleAt_ = 0;
    std::uint64_t sampleIndex_ = 0;

    std::vector<std::uint64_t> prevScalars_;
    std::vector<std::uint64_t> prevDistCounts_;
    std::vector<double> prevDistSums_;
    std::vector<HistBaseline> prevHists_;
};

} // namespace vtsim::telemetry

#endif // VTSIM_TELEMETRY_INTERVAL_SAMPLER_HH
