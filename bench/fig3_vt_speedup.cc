/**
 * @file
 * FIG-3 (headline result): IPC of the Virtual Thread machine normalised
 * to the baseline, per benchmark plus geometric mean. The paper reports
 * +23.9% on average; the shape to reproduce is large gains on
 * scheduling-limited memory-bound kernels, ~none on capacity-limited or
 * compute-bound ones, and no significant slowdowns.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-3", "VT speedup over baseline (IPC ratio)");

    const GpuConfig base_cfg = GpuConfig::fermiLike();
    GpuConfig vt_cfg = base_cfg;
    vt_cfg.vtEnabled = true;

    std::printf("%-14s %-20s %10s %10s %8s %8s\n", "benchmark", "class",
                "base-IPC", "vt-IPC", "speedup", "swaps");
    std::vector<double> ratios;
    for (const auto &name : benchmarkNames()) {
        const auto wl = makeWorkload(name, benchScale);
        const RunResult base = runWorkload(name, base_cfg, benchScale);
        const RunResult vt = runWorkload(name, vt_cfg, benchScale);
        const double ratio =
            double(base.stats.cycles) / double(vt.stats.cycles);
        ratios.push_back(ratio);
        std::printf("%-14s %-20s %10.3f %10.3f %7.2fx %8llu\n",
                    name.c_str(), toString(wl->expectedClass()).c_str(),
                    base.stats.ipc, vt.stats.ipc, ratio,
                    (unsigned long long)vt.stats.swapOuts);
    }
    std::printf("%-14s %-20s %10s %10s %7.2fx\n", "GMEAN", "", "", "",
                geomean(ratios));
    std::printf("(paper reports +23.9%% average on its suite)\n");
    return 0;
}
