/**
 * @file
 * JobService — the preemptive simulation-job scheduler behind vtsimd.
 *
 * Clients submit jobs (src/service/job.hh) that are admitted into a
 * bounded priority queue (src/service/job_queue.hh) and scheduled onto
 * a WorkerPool. The service applies the paper's oversubscription trick
 * at the job level:
 *
 *  - Admission beyond the worker count: jobs queue, bulky simulation
 *    state exists only for the `workers` jobs actually running.
 *  - Preemption at checkpoint boundaries: when a higher-priority job
 *    has to wait, the lowest-priority running job is asked to stop at
 *    its next checkpoint-cadence boundary (Gpu::requestPreempt). The
 *    worker saves a vtsim-ckpt-v1 image into the spool directory,
 *    parks the job (cheap JobRecord resident, scheduling slot freed)
 *    and the queue hands the slot to the high-priority job. A parked
 *    job later resumes bit-identically — its final KernelStats equal
 *    the uninterrupted run's.
 *  - Crash recovery: a job whose attempt throws is retried once, from
 *    its last parked checkpoint when one exists, from scratch
 *    otherwise; a second failure is reported with the reason.
 *
 * Service telemetry (queue depth, wait time, preemptions, retries,
 * per-job sim rate, worker utilization) lives in a StatGroup flattened
 * into a StatRegistry — the same machinery the simulated components
 * use — and is exported by status() and the service stats JSON
 * (src/service/stats_json.hh).
 */

#ifndef VTSIM_SERVICE_SERVICE_HH
#define VTSIM_SERVICE_SERVICE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/event_log.hh"
#include "service/job.hh"
#include "service/job_queue.hh"
#include "service/json.hh"
#include "service/stats_json.hh"
#include "service/worker_pool.hh"
#include "stats/stats.hh"
#include "telemetry/stat_registry.hh"
#include "telemetry/trace_json.hh"

namespace vtsim::service {

/** Everything the service tracks about one admitted job. */
struct JobRecord
{
    JobId id = 0;
    /** Admission order; ties within a priority resolve oldest-first
     *  and survive parking, so resumes precede later arrivals. */
    std::uint64_t seq = 0;
    Priority priority = Priority::Normal;
    JobSpec spec;
    JobState state = JobState::Queued;

    std::uint64_t preemptions = 0;
    std::uint64_t retries = 0;
    std::uint64_t injectedFailures = 0;
    /** Parked vtsim-ckpt-v1 image (empty = none). */
    std::string checkpointFile;
    std::string failureReason;

    std::chrono::steady_clock::time_point submitted;
    /** When the job last (re)entered the queue — admission, parking,
     *  or a retry readmit; start/resume events report the wait since. */
    std::chrono::steady_clock::time_point lastQueuedAt;
    bool everStarted = false;
    double waitSeconds = 0.0;
    double wallSeconds = 0.0;
    std::string intervalSeries;

    /** seq of this job's latest event-log line (0 before the first);
     *  the next event carries it as "parent" — per-job causality. */
    std::uint64_t lastEventSeq = 0;

    // Terminal result (state == Done).
    KernelStats stats;
    bool verified = false;
    std::uint32_t maxSimtDepth = 0;
    /** Per-grid results of a multi-kernel job (empty for classic). */
    std::vector<GridStats> grids;
};

struct ServiceConfig
{
    unsigned workers = 2;
    /** Queue-depth bound; submits beyond it get rejected:queue_full. */
    std::size_t queueLimit = 64;
    /**
     * Default preemption/checkpoint cadence (cycles) for jobs that do
     * not set checkpoint_every; 0 makes jobs non-preemptible unless
     * they opt in.
     */
    Cycle preemptEvery = 25000;
    /** Where parked checkpoint images live (created on demand). */
    std::string spoolDir = "vtsimd-spool";
    /**
     * Largest per-job shard-thread request (JobSpec::simThreads) the
     * service admits; bigger asks are rejected at submit with a
     * validation error rather than silently clamped — a client that
     * sized its request to the simulated machine should hear that this
     * daemon will not honor it. Kept small by default because workers
     * already run concurrently and the two multiply.
     */
    unsigned maxSimThreads = 4;
    /**
     * JSONL lifecycle event log (vtsim-evlog-v1, service/event_log.hh);
     * empty = disabled. Every submit/admit/start/preempt/park/resume/
     * crash/retry/finish transition is one line with per-job causality.
     */
    std::string eventLogPath;
    /**
     * Perfetto trace of job lifecycles (telemetry/trace_json.hh);
     * empty = disabled. Process 0 has one thread per worker (run
     * slices, nested checkpoint writes); process 1 has one thread per
     * job (queued/running/parked phase spans plus instants).
     * Timestamps are wall-clock microseconds since service start.
     */
    std::string jobTracePath;
};

class JobService
{
  public:
    explicit JobService(ServiceConfig config);

    /** Drains admitted jobs and joins the pool (as shutdown()). */
    ~JobService();

    struct SubmitOutcome
    {
        JobId id = 0;              ///< Nonzero on acceptance.
        std::string rejected;      ///< "queue_full" | "shutting_down".
        std::string error;         ///< Validation failure.
        bool ok() const { return id != 0; }
    };

    /** Validate and admit @p spec at @p priority. Never throws. */
    SubmitOutcome submit(const JobSpec &spec, Priority priority);

    /** Block until @p id is terminal; throws ProtocolError on an
     *  unknown id. */
    JobSnapshot wait(JobId id);

    /** Current state of @p id; throws ProtocolError on an unknown id. */
    JobSnapshot query(JobId id);

    /** Cancel a queued or parked job. False (with @p error set) when
     *  the job is unknown, running, or already terminal. */
    bool cancel(JobId id, std::string &error);

    struct YankOutcome
    {
        bool ok = false;
        /** True when the job left a parked checkpoint image behind. */
        bool hasImage = false;
        std::uint64_t imageBytes = 0;
        std::string error;
    };

    /**
     * Remove a queued or parked job for execution on another daemon
     * (coordinator work steal / migration). The job goes terminal here
     * as Migrated; a parked image stays on disk for ckpt_read until
     * releaseImage(). Fails like cancel on running/terminal jobs — a
     * steal that lost the race to a worker is a clean no-op.
     */
    YankOutcome yank(JobId id);

    /**
     * Read @p len bytes at @p offset of a migrated job's parked image
     * into @p out (short reads at EOF; @p total reports the image
     * size). False with @p error on unknown/imageless jobs.
     */
    bool readImageChunk(JobId id, std::uint64_t offset,
                        std::uint64_t len,
                        std::vector<std::uint8_t> &out,
                        std::uint64_t &total, std::string &error);

    /** Drop a migrated job's parked image (transfer complete). */
    bool releaseImage(JobId id, std::string &error);

    /** Cheap load snapshot for coordinator heartbeats — no job list,
     *  one lock hop. */
    struct Counts
    {
        std::uint64_t queueDepth = 0;
        std::uint64_t running = 0;
        std::uint64_t parked = 0;
        unsigned workers = 0;
    };
    Counts counts() const;

    /** Service telemetry snapshot (the status reply body). */
    Json status() const;

    /** The "service" section of the service stats JSON. */
    Json statsJsonSection() const;

    /** Completed jobs as stats-JSON run records, in job-id order. */
    std::vector<RunRecord> completedRuns() const;

    /**
     * Stop accepting submissions, drain every already-admitted job
     * (including parked and retrying ones) and retire the workers.
     * Idempotent; called by the destructor if not called explicitly.
     */
    void shutdown();

    const ServiceConfig &config() const { return config_; }

    /** The service StatGroup flattened by dotted path. */
    const telemetry::StatRegistry &telemetryRegistry() const
    { return registry_; }

    /**
     * The full registry in Prometheus text format (the `metrics` op
     * body and the --metrics-file payload). Takes the service lock, so
     * the scrape is a consistent snapshot.
     */
    std::string metricsText() const;

    /** The lifecycle event log, or nullptr (the daemon logs accept
     *  errors and its listening socket through it). */
    EventLog *eventLog() { return evlog_.get(); }

  private:
    struct RunningSlot
    {
        JobRecord *job = nullptr;
        Gpu *gpu = nullptr;        ///< Valid while the task runs.
        bool preemptSignalled = false;
    };

    bool nextTask(WorkerPool::Task &out, unsigned worker);
    void runJob(GpuArena &arena, JobRecord &job, unsigned worker);
    /** Park @p gpu's state for @p job in the spool dir. */
    void parkImage(JobRecord &job, Gpu &gpu, unsigned worker);
    /** Preempt the weakest running job if @p priority must wait. */
    void maybePreempt(Priority priority);
    JobSnapshot snapshotLocked(const JobRecord &job) const;
    void noteQueueDepthLocked();

    /** Event-log emit chained through @p job.lastEventSeq; no-op when
     *  the log is disabled. Caller holds mu_ (lastEventSeq access). */
    void eventLocked(JobRecord &job, const char *event,
                     Json::Object fields = {});

    // Job-trace helpers: TraceJsonWriter is not thread-safe, so every
    // write goes through traceMu_; all are no-ops without a trace.
    Cycle traceNowUs() const;
    void traceWorkerBegin(unsigned worker, const std::string &name);
    void traceWorkerEnd(unsigned worker);
    void traceJobBegin(JobId id, const char *phase);
    void traceJobEnd(JobId id);
    void traceJobInstant(JobId id, const std::string &name);
    /** Name the job's thread track on its first trace event. */
    void traceJobThread(const JobRecord &job);

    ServiceConfig config_;

    mutable std::mutex mu_;
    std::condition_variable workCv_;  ///< Workers wait for jobs.
    std::condition_variable doneCv_;  ///< wait() blocks here.

    JobQueue queue_;
    std::map<JobId, std::unique_ptr<JobRecord>> jobs_;
    std::vector<RunningSlot> running_;
    JobId nextId_ = 1;
    std::uint64_t nextSeq_ = 1;
    bool shuttingDown_ = false;
    bool joined_ = false;
    std::once_flag shutdownOnce_;

    std::chrono::steady_clock::time_point started_;

    // --- Telemetry (registered in statsGroup_/registry_) -------------
    Counter submitted_;
    Counter completed_;
    Counter failed_;
    Counter rejectedFull_;
    Counter cancelled_;
    Counter preemptions_;
    Counter retries_;
    Counter migratedOut_;   ///< Jobs yanked to another daemon.
    Counter migratedIn_;    ///< Jobs admitted with a resume image.
    std::uint64_t queueDepth_ = 0;     ///< Gauge.
    std::uint64_t runningJobs_ = 0;    ///< Gauge.
    std::uint64_t parkedJobs_ = 0;     ///< Gauge.
    std::uint64_t maxQueueDepth_ = 0;
    ScalarStat waitSeconds_;           ///< Per first start.
    ScalarStat jobKcyclesPerSec_;      ///< Per completed job.
    // Latency distributions (ScalarStat for count/sum/min/max plus a
    // fixed-width Histogram under "<name>_hist" for percentiles; the
    // Prometheus exporter emits both families).
    ScalarStat queueWaitSeconds_;      ///< Every start/resume.
    ScalarStat runSliceSeconds_;       ///< Every run slice.
    ScalarStat preemptResumeSeconds_;  ///< Park-to-resume latency.
    ScalarStat checkpointWriteSeconds_;
    Histogram queueWaitHist_{20, 0.05};
    Histogram runSliceHist_{20, 0.1};
    Histogram preemptResumeHist_{20, 0.05};
    Histogram checkpointWriteHist_{20, 0.005};
    double busySeconds_ = 0.0;
    StatGroup statsGroup_{"service"};
    telemetry::StatRegistry registry_;

    std::unique_ptr<EventLog> evlog_;
    /** Serializes every jobTrace_ write (workers race otherwise). */
    mutable std::mutex traceMu_;
    std::unique_ptr<telemetry::TraceJsonWriter> jobTrace_;

    // Construction order: pool_ last so worker threads only start once
    // every member above is initialized; shutdown() joins it first.
    std::unique_ptr<WorkerPool> pool_;
};

} // namespace vtsim::service

#endif // VTSIM_SERVICE_SERVICE_HH
