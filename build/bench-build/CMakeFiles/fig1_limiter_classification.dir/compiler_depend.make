# Empty compiler generated dependencies file for fig1_limiter_classification.
# This may be replaced when dependencies are built.
