/**
 * @file
 * Pretty-printer for kernels — the inverse of the assembler, used by
 * debugging tools and round-trip tests.
 */

#ifndef VTSIM_ISA_DISASSEMBLER_HH
#define VTSIM_ISA_DISASSEMBLER_HH

#include <string>

#include "isa/kernel.hh"

namespace vtsim {

/** Render one instruction as assembly text (no label column). */
std::string disassemble(const Instruction &inst);

/** Render a full kernel, including directives and labels, such that
 *  assemble(disassemble(k)) reproduces an equivalent kernel. */
std::string disassemble(const Kernel &kernel);

} // namespace vtsim

#endif // VTSIM_ISA_DISASSEMBLER_HH
