#include "service/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace vtsim::service {

namespace {

/** Recursive-descent parser over a bounded view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json
    document()
    {
        Json v = value(0);
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 32;

    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw JsonError("JSON parse error at byte " +
                        std::to_string(pos_) + ": " + why);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (text_.substr(pos_, n) == lit) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    value(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting deeper than " + std::to_string(kMaxDepth));
        skipSpace();
        const char c = peek();
        switch (c) {
          case '{':
            return object(depth);
          case '[':
            return array(depth);
          case '"':
            return Json(string());
          case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("invalid literal");
          case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("invalid literal");
          case 'n':
            if (consumeLiteral("null"))
                return Json(nullptr);
            fail("invalid literal");
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return number();
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    Json
    object(int depth)
    {
        expect('{');
        Json::Object members;
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(members));
        }
        for (;;) {
            skipSpace();
            std::string key = string();
            skipSpace();
            expect(':');
            members[std::move(key)] = value(depth + 1);
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return Json(std::move(members));
        }
    }

    Json
    array(int depth)
    {
        expect('[');
        Json::Array items;
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(items));
        }
        for (;;) {
            items.push_back(value(depth + 1));
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return Json(std::move(items));
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size())
                      fail("truncated \\u escape");
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = text_[pos_++];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code += h - '0';
                      else if (h >= 'a' && h <= 'f')
                          code += 10 + h - 'a';
                      else if (h >= 'A' && h <= 'F')
                          code += 10 + h - 'A';
                      else
                          fail("bad hex digit in \\u escape");
                  }
                  // Encode the code point as UTF-8. Surrogate pairs are
                  // passed through as two 3-byte sequences — the wire
                  // protocol never needs astral-plane fidelity.
                  if (code < 0x80) {
                      out += char(code);
                  } else if (code < 0x800) {
                      out += char(0xC0 | (code >> 6));
                      out += char(0x80 | (code & 0x3F));
                  } else {
                      out += char(0xE0 | (code >> 12));
                      out += char(0x80 | ((code >> 6) & 0x3F));
                      out += char(0x80 | (code & 0x3F));
                  }
                  break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    Json
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        // RFC 8259: no leading zeros ("01"), no bare minus.
        if (pos_ >= text_.size() || text_[pos_] < '0' ||
            text_[pos_] > '9') {
            fail("malformed number");
        }
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
            fail("leading zero in number");
        }
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        const std::string_view lit = text_.substr(start, pos_ - start);
        // Integral literal without exponent/fraction → exact int64.
        if (lit.find_first_of(".eE") == std::string_view::npos) {
            std::int64_t i = 0;
            const auto [p, ec] =
                std::from_chars(lit.data(), lit.data() + lit.size(), i);
            if (ec == std::errc() && p == lit.data() + lit.size())
                return Json(i);
        }
        double d = 0.0;
        const auto [p, ec] =
            std::from_chars(lit.data(), lit.data() + lit.size(), d);
        if (ec != std::errc() || p != lit.data() + lit.size())
            fail("malformed number '" + std::string(lit) + "'");
        return Json(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

Json
Json::parse(std::string_view text)
{
    return Parser(text).document();
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        throw JsonError("expected a boolean");
    return bool_;
}

std::int64_t
Json::asInt() const
{
    if (type_ == Type::Int)
        return int_;
    if (type_ == Type::Double && double_ == std::floor(double_))
        return std::int64_t(double_);
    throw JsonError("expected an integer");
}

double
Json::asDouble() const
{
    if (type_ == Type::Int)
        return double(int_);
    if (type_ == Type::Double)
        return double_;
    throw JsonError("expected a number");
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        throw JsonError("expected a string");
    return string_;
}

const Json::Array &
Json::asArray() const
{
    if (type_ != Type::Array)
        throw JsonError("expected an array");
    return array_;
}

const Json::Object &
Json::asObject() const
{
    if (type_ != Type::Object)
        throw JsonError("expected an object");
    return object_;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

void
Json::dumpTo(std::string &out) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(int_);
        break;
      case Type::Double: {
          // Shortest round-trippable decimal form (matches the stats
          // JSON convention established in bench/parallel_runner.cc).
          char buf[40];
          for (int prec = 1; prec <= 17; ++prec) {
              std::snprintf(buf, sizeof(buf), "%.*g", prec, double_);
              double back = 0.0;
              std::sscanf(buf, "%lf", &back);
              if (back == double_)
                  break;
          }
          out += buf;
          break;
      }
      case Type::String:
        appendEscaped(out, string_);
        break;
      case Type::Array: {
          out += '[';
          bool first = true;
          for (const Json &v : array_) {
              if (!first)
                  out += ',';
              first = false;
              v.dumpTo(out);
          }
          out += ']';
          break;
      }
      case Type::Object: {
          out += '{';
          bool first = true;
          for (const auto &[key, v] : object_) {
              if (!first)
                  out += ',';
              first = false;
              appendEscaped(out, key);
              out += ':';
              v.dumpTo(out);
          }
          out += '}';
          break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

} // namespace vtsim::service
