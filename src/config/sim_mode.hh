/**
 * @file
 * The execution-mode compatibility matrix. A run combines several
 * orthogonal switches — trace record/replay, mid-run checkpoints,
 * sharded simulation, the textual Trace facade, and (since concurrent
 * launches) multi-grid co-runs — and not every combination is
 * meaningful. The rules used to live as ad-hoc fatals scattered over
 * run_benchmark, the bench binaries, the job service and Gpu itself;
 * this header is the one place they are stated, and validateSimMode the
 * one error path that reports a violation.
 *
 * Two switch interactions are deliberately NOT errors but documented
 * fallbacks: trace recording and the textual Trace facade each force
 * sequential simulation, so combining either with --sim-threads > 1
 * silently runs sequentially (Gpu::effectiveSimThreads).
 */

#ifndef VTSIM_CONFIG_SIM_MODE_HH
#define VTSIM_CONFIG_SIM_MODE_HH

#include <cstddef>
#include <string>

#include "common/types.hh"

namespace vtsim {

/** The mode-relevant switches of one run, normalized to booleans and
 *  counts so callers at every layer (CLI front ends, the job service,
 *  Gpu::launchConcurrent) can describe themselves the same way. */
struct SimModeSpec
{
    /** --record-trace: write a vtsim-mtrace-v1 access trace. */
    bool recordTrace = false;
    /** --replay-trace: drive memory from a recorded trace. */
    bool replayTrace = false;
    /** --restore: the run resumes a restored checkpoint. */
    bool restore = false;
    /** --checkpoint-every cadence (mid-run checkpoints / preemption). */
    Cycle checkpointEvery = 0;
    /** Grids in the launch; > 1 means a concurrent co-run. */
    std::size_t numGrids = 1;
    /** Co-run uses SharePolicy::Preempt. */
    bool preemptPolicy = false;
    /** The machine has Virtual Thread enabled (GpuConfig::vtEnabled). */
    bool vtEnabled = false;
};

/**
 * Check @p spec against the matrix.
 * @return The canonical error message of the first violated rule, or
 *         an empty string when the combination is valid.
 */
std::string validateSimMode(const SimModeSpec &spec);

/** validateSimMode, but a violation is a FatalError. */
void requireValidSimMode(const SimModeSpec &spec);

} // namespace vtsim

#endif // VTSIM_CONFIG_SIM_MODE_HH
