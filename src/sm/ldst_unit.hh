/**
 * @file
 * The SM's load/store unit: coalesced global transactions through the L1
 * (with MSHR merging), write-through stores, L1-bypassing atomics, and
 * the completion plumbing that clears warp scoreboards. Off-chip
 * transaction tracking here produces the "long-latency stall" signal the
 * Virtual Thread swap trigger consumes.
 */

#ifndef VTSIM_SM_LDST_UNIT_HH
#define VTSIM_SM_LDST_UNIT_HH

#include <deque>
#include <queue>
#include <vector>

#include "config/gpu_config.hh"
#include "func/exec_context.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "mem/mem_request.hh"
#include "mem/mtrace.hh"
#include "sim/sim_component.hh"

namespace vtsim {

class Interconnect;

/**
 * Callbacks from the LDST unit into the SM core.
 *
 * These are ready-set publication points: each one can flip a warp's
 * issuability (loadComplete releases a scoreboard hazard; the off-chip
 * pair moves the warp's pendingOffChip across 0), so the SM re-evaluates
 * the warp's ready-list membership and stall counters inside them rather
 * than rescanning on the next cycle.
 */
class LdstClient
{
  public:
    virtual ~LdstClient() = default;

    /** Every transaction of a warp load completed: clear its dst. */
    virtual void loadComplete(VirtualCtaId vcta, std::uint32_t warp_in_cta,
                              RegIndex dst) = 0;

    /** A transaction of this warp left the SM (post-L1). */
    virtual void offChipIssued(VirtualCtaId vcta,
                               std::uint32_t warp_in_cta) = 0;

    /** A previously off-chip transaction of this warp returned. */
    virtual void offChipReturned(VirtualCtaId vcta,
                                 std::uint32_t warp_in_cta) = 0;

    /**
     * A NoC response is about to be processed at cycle @p now. Called
     * before any completion bookkeeping so a lazily fast-forwarding SM
     * can settle its skipped cycles first — round-trip and MLP samples
     * must observe the same state as the cycle-by-cycle loop.
     */
    virtual void responseArriving(Cycle now) = 0;
};

class LdstUnit : public MemResponseSink, public SimComponent
{
  public:
    LdstUnit(SmId sm_id, const GpuConfig &config, Interconnect &noc,
             LdstClient &client);

    /** Room for one more warp memory instruction's transactions?
     *  Inline: checked on every memory-warp issue-sweep visit. Leaves
     *  room for a fully diverged instruction (32 transactions). */
    bool canAccept() const
    { return injectQueue_.size() + warpSize <= maxInjectQueue; }

    /**
     * Accept one warp global-memory instruction (already functionally
     * executed). Coalesces into line transactions and queues them.
     * The SM must have reserved @p inst.dst beforehand for loads.
     */
    void issueGlobal(VirtualCtaId vcta, std::uint32_t warp_in_cta,
                     const Instruction &inst,
                     const std::vector<LaneAccess> &accesses,
                     GridId grid = 0);

    /**
     * Inject one recorded transaction (trace replay). Reproduces
     * issueGlobal's per-transaction bookkeeping — loads and atomics get
     * a one-shot pending entry with no destination register — so the
     * L1/NoC see the identical request stream the recording run
     * produced. The SM replay driver calls this right after tick(@p c)
     * for every record stamped cycle @p c, matching the functional
     * issue-at-c / inject-from-c+1 cadence.
     */
    void replayInject(const MtraceAccess &access);

    /** Route every coalesced transaction to @p writer (record mode);
     *  null disables. */
    void setMtraceWriter(MtraceWriter *writer) { mtrace_ = writer; }

    /** Drive injections and L1-hit completions for cycle @p now. */
    void tick(Cycle now) override;

    /** Interconnect response delivery. Settles the unit's own per-cycle
     *  MLP samples up to (but excluding) @p now before any counter
     *  moves, so the skipped window observes the pre-completion
     *  outstanding count — this is the only settle entry point for
     *  externally driven state. */
    void memResponse(std::uint64_t token, Cycle now) override;

    /** No transactions queued or in flight. */
    bool idle() const;

    /**
     * Earliest cycle >= @p now at which tick() might act: queued
     * transactions inject every tick; otherwise the next matured L1
     * hit. Transactions out at the NoC/L2/DRAM are those components'
     * events. neverCycle when nothing local is pending.
     */
    Cycle nextEventCycle(Cycle now) override;

    /**
     * Bring the per-cycle MLP series up to date through cycle
     * @p cycle - 1 (cycle @p cycle itself is sampled by the next tick or
     * memResponse). The outstanding count is constant over the settled
     * window by the horizon contract, so one sampleN reproduces the
     * skipped per-cycle samples bit for bit.
     */
    void settleTo(Cycle cycle) override;

    // SimComponent lifecycle.
    void reset() override;
    void save(Serializer &ser) const override;
    void restore(Deserializer &des) override;

    Cache &l1() { return l1_; }
    const Cache &l1() const { return l1_; }

    /** Coalesced transactions generated (stat). */
    std::uint64_t transactions() const { return transactions_.value(); }

    /** Mean outstanding off-chip loads per cycle (memory parallelism). */
    double meanMlp() const { return mlp_.mean(); }
    double meanQueueWait() const { return queueWait_.mean(); }
    double meanRoundTrip() const { return roundTrip_.mean(); }
    StatGroup &stats() { return stats_; }

    /** Invalidate L1 (kernel boundary). */
    void flushCaches() { l1_.flush(); }

  private:
    /** One warp memory instruction awaiting its transactions. */
    struct PendingWarpMem
    {
        VirtualCtaId vcta = invalidId;
        std::uint32_t warpInCta = 0;
        RegIndex dst = noReg;
        std::uint32_t remaining = 0;
        bool inUse = false;
    };

    /** One line transaction in flight. */
    struct Transaction
    {
        std::uint32_t pendingIdx = 0;
        Addr lineAddr = 0;
        std::uint32_t bytes = 0;
        MemAccessKind kind = MemAccessKind::Load;
        bool bypassL1 = false;  ///< Streaming (.cg) load: skip the L1.
        bool throughL1 = false; ///< Response must fill our L1.
        bool offChip = false;   ///< Counted in the warp's off-chip total.
        bool inUse = false;
        Cycle createdAt = 0;    ///< When the warp instruction issued.
        Cycle injectedAt = 0;   ///< When it entered the L1/NoC.
        GridId grid = 0;        ///< Issuing grid (per-grid attribution).
    };

    std::uint32_t allocPending(VirtualCtaId vcta, std::uint32_t warp,
                               RegIndex dst, std::uint32_t remaining);
    std::uint64_t allocTransaction(const Transaction &t);
    void completeTransaction(std::uint64_t token);
    void markOffChip(std::uint64_t token);
    bool injectOne(Cycle now);

    SmId smId_;
    const GpuConfig &config_;
    Interconnect &noc_;
    LdstClient &client_;
    Cache l1_;
    /** Trace sink for record mode (not machine state, never saved). */
    MtraceWriter *mtrace_ = nullptr;

    std::vector<PendingWarpMem> pendingSlab_;
    std::vector<std::uint32_t> pendingFree_;
    std::vector<Transaction> txnSlab_;
    std::vector<std::uint64_t> txnFree_;

    /** Transactions waiting to enter the L1 / NoC, in order. */
    std::deque<std::uint64_t> injectQueue_;
    static constexpr std::size_t maxInjectQueue = 64;

    /** L1-hit completions scheduled for the future. */
    struct HitCompletion
    {
        Cycle readyAt;
        std::uint64_t token;
        /** Total order: heap pop order must be a function of the
         *  machine state alone, not of push history, or a
         *  checkpoint-restored run could retire same-cycle ties in a
         *  different order than the uninterrupted one. */
        bool operator>(const HitCompletion &o) const
        {
            if (readyAt != o.readyAt)
                return readyAt > o.readyAt;
            return token > o.token;
        }
    };
    std::priority_queue<HitCompletion, std::vector<HitCompletion>,
                        std::greater<>> hitPending_;

    /** Cycle of the last full tick()/memResponse(), refreshed before
     *  every observable use (transaction createdAt, round-trip
     *  samples). Not checkpointed: its value depends on which ticks
     *  the fast-forward guard skipped — tick cadence, not machine
     *  state — and cadence varies across sequential, sharded and
     *  resumed runs whose checkpoints must stay byte-identical. */
    Cycle now_ = 0;
    /** Next cycle without an MLP sample: tick(), memResponse() and
     *  settleTo() advance it, each sampling the gap it closes. */
    Cycle statsTo_ = 0;
    std::uint32_t inFlight_ = 0; ///< Live transactions (all kinds).
    std::uint32_t offChipOutstanding_ = 0; ///< Post-L1 loads in flight.

    StatGroup stats_;
    Counter transactions_;
    Counter storeTxns_;
    Counter atomTxns_;
    Counter bypassTxns_;
    Counter injectStalls_;
    ScalarStat mlp_; ///< Outstanding off-chip loads, sampled per cycle.
    ScalarStat queueWait_;   ///< Cycles from creation to injection.
    ScalarStat roundTrip_;   ///< Cycles from injection to completion.
};

} // namespace vtsim

#endif // VTSIM_SM_LDST_UNIT_HH
