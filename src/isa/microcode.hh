/**
 * @file
 * Pre-decoded micro-op stream: the functional fast path.
 *
 * Every Kernel is lowered once at load into a flat MicroProgram — one
 * MicroOp per Instruction, in stream order — with operand slots
 * resolved, the immediate folded to raw bits, the comparison / special
 * register / use-imm variants burned into the handler choice, and
 * branch targets rewritten as stream indices. At issue time the
 * interpreter is one indirect call through the op's handler pointer
 * (direct-threaded dispatch) with a tight active-lane loop inside,
 * instead of the legacy per-lane switch over Opcode.
 *
 * The micro stream is derived state: it is rebuilt from the
 * Instruction list whenever a Kernel is constructed and never
 * serialized, so the embedded handler pointers are always valid for
 * the running binary.
 */

#ifndef VTSIM_ISA_MICROCODE_HH
#define VTSIM_ISA_MICROCODE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace vtsim {

struct CtaFuncState;
class GlobalMemory;
struct LaunchParams;
struct ExecResult;
struct MicroOp;

/**
 * Everything a micro-op handler touches, gathered once per issue.
 * Register access goes through the raw pointer + stride rather than
 * CtaFuncState::readReg so the lane loop indexes a local base pointer.
 */
struct MicroCtx
{
    std::uint32_t *regs;          ///< cta.regs.data()
    std::uint32_t regsPerThread;  ///< register-file stride per thread
    std::uint32_t baseThread;     ///< warpInCta * warpSize
    std::uint32_t threadsPerCta;  ///< lanes at/after this are dead
    std::uint32_t mask;           ///< active-lane bits
    std::uint32_t warpInCta;
    CtaFuncState *cta;            ///< shared memory + ctaIdx
    GlobalMemory *gmem;
    const LaunchParams *launch;
    ExecResult *out;
};

/** A micro-op handler: executes one instruction for every active lane. */
using MicroHandler = void (*)(const MicroOp &, MicroCtx &);

/**
 * One pre-decoded micro-op. The handler pointer encodes everything the
 * legacy interpreter re-derived per issue: opcode, imm-vs-register
 * second operand, comparison operator, special register. Operands are
 * plain slots the handler indexes without looking at the Instruction.
 */
struct MicroOp
{
    MicroHandler fn = nullptr;
    RegIndex dst = noReg;
    RegIndex src0 = noReg;
    RegIndex src1 = noReg;
    RegIndex src2 = noReg;
    /** Immediate as raw bits (bit-cast for float consumers). */
    std::uint32_t imm = 0;
    /** Branch target as a stream index (BRA only; 0 otherwise). The
     *  timing model's SIMT stack still reads Instruction::branchTarget;
     *  this keeps the micro stream self-contained for standalone
     *  stepping and the oracle. */
    std::uint32_t target = 0;
};

/** A lowered kernel: one MicroOp per Instruction, same indices. */
using MicroProgram = std::vector<MicroOp>;

/**
 * Lower @p instrs into a MicroProgram. Every opcode the legacy
 * interpreter accepts lowers; an unknown opcode is a fatal error
 * (mirroring the legacy VTSIM_PANIC). Defined alongside the handlers
 * in func/exec_context.cc because lowering resolves handler pointers.
 */
MicroProgram buildMicroProgram(const std::vector<Instruction> &instrs);

} // namespace vtsim

#endif // VTSIM_ISA_MICROCODE_HH
