/**
 * @file
 * One streaming multiprocessor: warp contexts grouped into virtual CTAs,
 * warp schedulers, execution timing, the LDST unit, barriers, and the
 * Virtual Thread manager that decides which CTAs may issue.
 */

#ifndef VTSIM_SM_SM_CORE_HH
#define VTSIM_SM_SM_CORE_HH

#include <memory>
#include <queue>
#include <vector>

#include "config/gpu_config.hh"
#include "core/virtual_thread.hh"
#include "cta/cta_dispatcher.hh"
#include "cta/cta_throttler.hh"
#include "func/exec_context.hh"
#include "isa/kernel.hh"
#include "mem/shared_memory.hh"
#include "sm/barrier_manager.hh"
#include "sm/ldst_unit.hh"
#include "sm/warp_context.hh"
#include "sm/warp_scheduler.hh"
#include "stats/stats.hh"

namespace vtsim {

class GlobalMemory;
class Interconnect;

/** Why a scheduler slot issued nothing in a cycle (FIG-8 breakdown). */
struct StallBreakdown
{
    std::uint64_t issued = 0;       ///< Scheduler-cycles that issued.
    std::uint64_t memStall = 0;     ///< Blocked on off-chip memory.
    std::uint64_t shortStall = 0;   ///< Blocked on short dependences/ports.
    std::uint64_t barrierStall = 0; ///< Everyone parked at a barrier.
    std::uint64_t swapStall = 0;    ///< Only swap-frozen CTAs resident.
    std::uint64_t idle = 0;         ///< No warps at all.
};

class SmCore : public LdstClient, public VtCtaQuery
{
  public:
    SmCore(SmId id, const GpuConfig &config, Interconnect &noc);

    /** Bind the kernel this SM will run (Gpu calls this at launch). */
    void launchKernel(const Kernel &kernel, const LaunchParams &launch,
                      GlobalMemory &gmem);

    /** True when another CTA can be admitted right now. */
    bool canAdmitCta() const;

    /** Admit one CTA from the dispatcher. */
    void admitCta(const CtaAssignment &assignment, Cycle now);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Earliest cycle >= @p now at which tick() might do real work given
     * no admission and no NoC delivery happens first: a warp becoming
     * ready or issuable, a writeback or L1-hit maturing, a VT transition
     * or swap-threshold crossing, a throttle-epoch boundary, or the
     * shared-memory port freeing. neverCycle when the SM is fully
     * event-blocked (e.g. every live warp waits on off-chip memory).
     * Non-const: flushes deferred idle-tick accounting first.
     */
    Cycle nextEventCycle(Cycle now);

    /**
     * Account @p n ticked-but-eventless cycles in one step, exactly as
     * @p n empty tick() calls starting at @p now would have: per-cycle
     * stat samples, stall-bubble classification, VT stall streaks and
     * throttler-epoch observations. Only valid when
     * nextEventCycle(@p now) > @p now + @p n - 1.
     */
    void fastForwardIdle(Cycle now, std::uint64_t n);

    /**
     * Apply deferred accounting of lazily skipped ticks (see tick()).
     * Called automatically before any state change or query that could
     * observe the deferral; public so Gpu can settle accounts before
     * reading final statistics.
     */
    void flushFastForward();

    /** No resident CTAs and no memory traffic in flight. */
    bool idle() const;

    /** Invalidate L1 (kernel boundary). */
    void flushCaches()
    {
        onExternalEvent();
        ldst_.flushCaches();
    }

    SmId id() const { return id_; }
    LdstUnit &ldst() { return ldst_; }
    VirtualThreadManager &vt() { return vt_; }
    const VirtualThreadManager &vt() const { return vt_; }
    /** Null unless throttleEnabled. */
    CtaThrottler *throttler() { return throttler_.get(); }

    std::uint64_t instructionsIssued() const
    { return instructionsIssued_.value(); }
    std::uint64_t threadInstructions() const
    { return threadInstructions_.value(); }
    std::uint64_t ctasCompleted() const { return ctasCompleted_.value(); }
    const StallBreakdown &stallBreakdown() const { return stalls_; }
    std::uint32_t maxSimtDepthSeen() const { return maxSimtDepth_; }
    StatGroup &stats() { return stats_; }

    // --- LdstClient ---------------------------------------------------------
    void loadComplete(VirtualCtaId vcta, std::uint32_t warp_in_cta,
                      RegIndex dst) override;
    void offChipIssued(VirtualCtaId vcta,
                       std::uint32_t warp_in_cta) override;
    void offChipReturned(VirtualCtaId vcta,
                         std::uint32_t warp_in_cta) override;

    // --- VtCtaQuery ---------------------------------------------------------
    bool ctaFullyStalled(VirtualCtaId id) const override;
    bool ctaAnyWarpLongStalled(VirtualCtaId id) const override;
    std::uint32_t ctaPendingOffChip(VirtualCtaId id) const override;

  private:
    /** One resident (virtual) CTA: functional state + warp contexts. */
    struct VirtualCta
    {
        bool valid = false;
        std::uint64_t age = 0;
        CtaFuncState func;
        std::vector<WarpContext> warps;
        /** Warp indices per scheduler slot — the (age * warps + w) %
         *  schedulers interleaving, precomputed once at admission so the
         *  per-tick issue sweep visits each warp exactly once. */
        std::vector<std::vector<std::uint32_t>> schedWarps;
        /** Live warps per scheduler slot: lets the sweep classify frozen
         *  or fully retired CTAs without visiting their warps. */
        std::vector<std::uint32_t> aliveBySched;
        std::uint32_t warpsAlive = 0;
        /** Sum of the warps' pendingOffChip counts, so the VT swap-in
         *  readiness test does not rescan warps. */
        std::uint32_t pendingOffChipTotal = 0;
    };

    /** Per-cycle structural budgets, reset each tick. */
    struct IssueBudgets
    {
        std::uint32_t alu = 0;
        std::uint32_t sfu = 0;
        std::uint32_t mem = 0;
    };

    /** Attribution of a scheduler-cycle that issued nothing. */
    enum class BubbleKind : std::uint8_t
    {
        Idle,
        Mem,
        Barrier,
        Swap,
        Short,
    };

    /**
     * Warp-local issuability. With @p ignore_structural the per-SM port
     * constraints (LDST queue space, shared-mem port) are ignored: the VT
     * swap trigger must not mistake structural back-pressure — which
     * clears in a few cycles — for a long-latency stall.
     * Inline (below): called for every warp visit of the issue sweep.
     */
    bool warpCanIssueLocal(const WarpContext &warp, Cycle now,
                           bool ignore_structural = false) const;
    bool budgetAllows(const Instruction &inst,
                      const IssueBudgets &budgets) const;
    void chargeBudget(const Instruction &inst, IssueBudgets &budgets) const;
    void issueWarp(VirtualCta &cta, VirtualCtaId slot, WarpContext &warp,
                   Cycle now);
    void maybeReleaseBarrier(VirtualCtaId slot, Cycle now);
    void finishCta(VirtualCtaId slot, Cycle now);
    BubbleKind classifyIssueBubble(std::uint32_t scheduler,
                                   Cycle now) const;
    void chargeBubble(BubbleKind kind, std::uint64_t n);
    /** The per-cycle bookkeeping of @p n eventless ticks at @p now. */
    void accountIdleCycles(Cycle now, std::uint64_t n);
    /** State changed from outside tick(): settle and drop the cached
     *  idle horizon. */
    void onExternalEvent();

    SmId id_;
    const GpuConfig &config_;
    const Kernel *kernel_ = nullptr;
    const LaunchParams *launch_ = nullptr;
    GlobalMemory *gmem_ = nullptr;

    LdstUnit ldst_;
    SharedMemoryModel shmem_;
    BarrierManager barriers_;
    VirtualThreadManager vt_;
    std::unique_ptr<CtaThrottler> throttler_;

    std::vector<VirtualCta> ctas_;
    std::vector<VirtualCtaId> freeSlots_;
    std::uint32_t residentCount_ = 0;
    std::uint64_t nextCtaAge_ = 0;

    std::vector<std::unique_ptr<WarpScheduler>> schedulers_;

    // Issue-sweep scratch, reused across ticks to avoid reallocation.
    std::vector<WarpCandidate> cands_;
    std::vector<std::pair<VirtualCtaId, std::uint32_t>> refs_;

    struct Writeback
    {
        Cycle at;
        VirtualCtaId vcta;
        std::uint32_t warpInCta;
        RegIndex reg;
        bool operator>(const Writeback &o) const { return at > o.at; }
    };
    std::priority_queue<Writeback, std::vector<Writeback>,
                        std::greater<>> wbQueue_;

    Cycle now_ = 0;
    std::uint32_t maxSimtDepth_ = 0;

    // Lazy-tick state: while now < ffHorizon_ and no external event
    // arrives, tick() only counts the cycle; the bookkeeping is applied
    // in bulk when the window closes.
    Cycle ffHorizon_ = 0;
    Cycle ffWindowStart_ = 0;
    std::uint64_t ffPending_ = 0;

    StatGroup stats_;
    Counter instructionsIssued_;
    Counter threadInstructions_;
    Counter ctasCompleted_;
    StallBreakdown stalls_;
};

inline bool
SmCore::warpCanIssueLocal(const WarpContext &warp, Cycle now,
                          bool ignore_structural) const
{
    if (warp.done() || warp.atBarrier() || warp.readyAt() > now)
        return false;
    const Instruction &inst = kernel_->at(warp.stack().pc());
    if (inst.isExit() && warp.scoreboard().pendingCount() > 0)
        return false; // Retire only with all writes landed.
    if (warp.scoreboard().hasHazard(inst))
        return false;
    if (!ignore_structural) {
        if (inst.isGlobalMem() && !ldst_.canAccept())
            return false;
        if (inst.isSharedMem() && !shmem_.canAccept(now))
            return false;
    }
    return true;
}

} // namespace vtsim

#endif // VTSIM_SM_SM_CORE_HH
