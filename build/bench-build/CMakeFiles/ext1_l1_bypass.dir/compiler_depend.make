# Empty compiler generated dependencies file for ext1_l1_bypass.
# This may be replaced when dependencies are built.
