#!/usr/bin/env python3
"""Gate the simulator self-profiler: low overhead, honest attribution.

Runs the FIG-3 suite sequentially (--jobs 1, the stable-timing
configuration) twice — plain, and with --profile-json — and asserts:

 1. Overhead: the profiled wall is within --max-overhead-pct (default
    2%) of the plain wall. The --repeats measurements of the two
    configurations are *interleaved* (plain, profiled, plain, …) and
    each side takes its best run: back-to-back blocks would fold
    machine-load drift into the comparison, which on a shared runner
    dwarfs the effect being measured.
 2. Attribution: summed over every run in the suite, the profiler's
    extrapolated per-phase seconds cover at least --min-attributed
    (default 0.95) of the profiled in-run wall, and at most
    --max-attributed (default 1.10 — sampling error on sub-100ms runs
    averages out over the suite but never vanishes).

Emits BENCH_profile.json recording both measurements plus every
per-run profile document, so a regression is diagnosable from the CI
artifact alone.

Standard library only. Usage:
    bench_profile.py [--binary PATH] [--out PATH] [--repeats N]
"""

import argparse
import glob
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time


def run_once(binary, extra_args):
    start = time.perf_counter()
    subprocess.run([binary, "--jobs", "1"] + extra_args, check=True,
                   stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    return time.perf_counter() - start


def interleaved_walls(binary, prof_args, repeats):
    """Best plain and best profiled wall from alternating runs."""
    plain, profiled = [], []
    for _ in range(repeats):
        plain.append(run_once(binary, []))
        profiled.append(run_once(binary, prof_args))
    return min(plain), min(profiled)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--binary", default="build/bench/fig3_vt_speedup")
    parser.add_argument("--out", default="BENCH_profile.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--max-overhead-pct", type=float, default=2.0)
    parser.add_argument("--min-attributed", type=float, default=0.95)
    parser.add_argument("--max-attributed", type=float, default=1.10)
    args = parser.parse_args()

    binary = os.path.abspath(args.binary)
    if not os.path.exists(binary):
        print(f"error: no such binary {binary}", file=sys.stderr)
        return 2

    profiles = []
    with tempfile.TemporaryDirectory(prefix="vtsim-profile-") as tmp:
        prof_path = os.path.join(tmp, "prof.json")
        plain_wall, profiled_wall = interleaved_walls(
            binary, ["--profile-json", prof_path], args.repeats)
        for path in sorted(glob.glob(os.path.join(tmp, "prof*.json"))):
            profiles.append(json.loads(pathlib.Path(path).read_text()))

    failures = []
    if not profiles:
        failures.append("no vtsim-profile-v1 documents were written")
    for doc in profiles:
        if doc.get("schema") != "vtsim-profile-v1":
            failures.append(f"bad schema tag in profile: {doc.get('schema')}")

    overhead_pct = (profiled_wall / plain_wall - 1.0) * 100.0
    if overhead_pct > args.max_overhead_pct:
        failures.append(
            f"profiler overhead {overhead_pct:.2f}% exceeds "
            f"{args.max_overhead_pct:.2f}% "
            f"(plain {plain_wall:.3f}s, profiled {profiled_wall:.3f}s)")

    attributed = sum(d["attributed_seconds"] for d in profiles)
    run_wall = sum(d["run_seconds"] for d in profiles)
    fraction = attributed / run_wall if run_wall else 0.0
    if fraction < args.min_attributed:
        failures.append(
            f"attributed fraction {fraction:.3f} below "
            f"{args.min_attributed:.2f}: the profiler is blind to part "
            "of the loop")
    if fraction > args.max_attributed:
        failures.append(
            f"attributed fraction {fraction:.3f} above "
            f"{args.max_attributed:.2f}: extrapolation is fabricating "
            "time")

    doc = {
        "schema": "vtsim-profile-bench-v1",
        "binary": binary,
        "repeats": args.repeats,
        "plain_wall_seconds": plain_wall,
        "profiled_wall_seconds": profiled_wall,
        "overhead_pct": overhead_pct,
        "attributed_seconds": attributed,
        "run_seconds": run_wall,
        "attributed_fraction": fraction,
        "profiles": profiles,
    }
    pathlib.Path(args.out).write_text(json.dumps(doc, indent=1) + "\n")

    print(f"plain {plain_wall:.3f}s, profiled {profiled_wall:.3f}s "
          f"({overhead_pct:+.2f}%), attribution {fraction:.3f} over "
          f"{len(profiles)} runs -> {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
