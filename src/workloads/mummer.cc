/**
 * @file
 * MUMmerGPU-style suffix-tree traversal: each warp walks one query down
 * a binary trie stored in global memory, one dependent (but
 * warp-uniform, so fully coalesced) load per level. With 32-thread CTAs
 * the baseline holds only 8 concurrent traversals per SM — pure
 * pointer-chase latency with nothing to hide it behind, the archetype
 * of the paper's biggest Virtual Thread winners.
 */

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

constexpr std::uint32_t kDepth = 16;
constexpr std::uint32_t kNodes = 1 << 17; // 128K nodes x 2 words = 1 MB

class Mummer : public Workload
{
  public:
    explicit Mummer(std::uint32_t scale)
        : queries_(scale == 0 ? 256 : 12288 * scale)
    {}

    std::string name() const override { return "mummer"; }

    std::string
    description() const override
    {
        return "warp-uniform trie walk, dependent loads per level";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        // One query per thread; all lanes of a warp share the same key
        // (warp-synchronous traversal), so each hop is one transaction.
        return assemble(R"(
.kernel mummer
    ldp r0, 0            # children (node*2 + bit)
    ldp r1, 1            # keys (one per warp)
    ldp r2, 2            # out (one per thread)
    ldp r3, 3            # numWarps
    ldp r4, 4            # depth
    s2r r5, ctaid.x
    s2r r6, ntid.x
    s2r r7, tid.x
    imad r8, r5, r6, r7  # global thread id
    shr r9, r8, 5        # global warp id
    isetp.ge r10, r9, r3
    bra r10, done
    shl r11, r9, 2
    iadd r11, r11, r1
    ldg r12, [r11]       # key
    movi r13, 0          # cur node
    movi r14, 0          # level
walk:
    shr r15, r12, r14
    and r15, r15, 1      # bit
    shl r16, r13, 1
    iadd r16, r16, r15   # cur*2 + bit
    shl r16, r16, 2
    iadd r16, r16, r0
    ldg r13, [r16]       # cur = children[...]
    iadd r14, r14, 1
    isetp.lt r17, r14, r4
    bra r17, walk
    shl r18, r8, 2
    iadd r18, r18, r2
    stg [r18], r13
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd0f);
        // A random functional trie: children[n][b] is a uniform random
        // node, so every hop lands on a fresh cache line.
        std::vector<std::uint32_t> children(std::size_t(kNodes) * 2);
        for (auto &v : children)
            v = rng.nextBelow(kNodes);
        const std::uint32_t num_warps = ceilDiv(queries_, warpSize);
        std::vector<std::uint32_t> keys(num_warps);
        for (auto &v : keys)
            v = static_cast<std::uint32_t>(rng.next());

        childrenAddr_ = gmem.alloc(children.size() * 4);
        keysAddr_ = gmem.alloc(keys.size() * 4);
        outAddr_ = gmem.alloc(queries_ * 4);
        gmem.writeWords(childrenAddr_, children);
        gmem.writeWords(keysAddr_, keys);

        expected_.resize(queries_);
        for (std::uint32_t t = 0; t < queries_; ++t) {
            const std::uint32_t key = keys[t / warpSize];
            std::uint32_t cur = 0;
            for (std::uint32_t level = 0; level < kDepth; ++level) {
                const std::uint32_t bit = (key >> level) & 1;
                cur = children[std::size_t(cur) * 2 + bit];
            }
            expected_[t] = cur;
        }

        LaunchParams lp;
        lp.cta = Dim3(32);
        lp.grid = Dim3(ceilDiv(queries_, 32));
        lp.params = {std::uint32_t(childrenAddr_),
                     std::uint32_t(keysAddr_), std::uint32_t(outAddr_),
                     num_warps, kDepth};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readWords(outAddr_, queries_);
        for (std::uint32_t t = 0; t < queries_; ++t)
            if (got[t] != expected_[t])
                return false;
        return true;
    }

  private:
    std::uint32_t queries_;
    Addr childrenAddr_ = 0, keysAddr_ = 0, outAddr_ = 0;
    std::vector<std::uint32_t> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeMummer(std::uint32_t scale)
{
    return std::make_unique<Mummer>(scale);
}

} // namespace vtsim
