/**
 * @file
 * A compiled VASM kernel plus its static resource declaration — the unit
 * the occupancy calculator and the CTA dispatcher reason about.
 */

#ifndef VTSIM_ISA_KERNEL_HH
#define VTSIM_ISA_KERNEL_HH

#include <map>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/microcode.hh"

namespace vtsim {

/**
 * An immutable kernel: instruction stream + resource metadata.
 *
 * The resource declaration (registers per thread, static shared memory per
 * CTA) plays the role of the `.reg`/`.shared` directives a PTX kernel
 * carries; together with the CTA shape chosen at launch it determines
 * which hardware limit — scheduling or capacity — binds.
 */
class Kernel
{
  public:
    Kernel(std::string name, std::vector<Instruction> instructions,
           std::uint32_t regs_per_thread, std::uint32_t shared_bytes,
           std::map<Pc, std::string> labels = {});

    const std::string &name() const { return name_; }
    const std::vector<Instruction> &instructions() const { return instrs_; }
    const Instruction &at(Pc pc) const
    {
        VTSIM_ASSERT(pc < instrs_.size(), "pc out of range");
        return instrs_[pc];
    }
    std::uint32_t size() const { return instrs_.size(); }

    /** Architectural registers each thread of this kernel uses. */
    std::uint32_t regsPerThread() const { return regsPerThread_; }

    /** Static shared memory footprint of one CTA, in bytes. */
    std::uint32_t sharedBytesPerCta() const { return sharedBytes_; }

    /** Label attached to @p pc, or empty. Used by the disassembler. */
    std::string labelAt(Pc pc) const;

    /** Pre-decoded micro-op stream, index-parallel with instructions().
     *  Built once in the constructor (after verify()); see
     *  isa/microcode.hh. */
    const MicroProgram &micro() const { return micro_; }

    /**
     * Structural sanity check: branch targets in range, reconvergence PCs
     * set on every branch, terminating EXIT reachable. Throws FatalError.
     */
    void verify() const;

  private:
    std::string name_;
    std::vector<Instruction> instrs_;
    std::uint32_t regsPerThread_;
    std::uint32_t sharedBytes_;
    std::map<Pc, std::string> labels_;
    MicroProgram micro_;
};

/** Kernel launch geometry and parameter block (the <<<grid, cta>>>). */
struct LaunchParams
{
    Dim3 grid;
    Dim3 cta;
    std::vector<std::uint32_t> params; ///< Kernel parameter words (LDP).

    /** Threads in one CTA. */
    std::uint32_t threadsPerCta() const { return cta.count(); }

    /** Warps in one CTA (rounded up). */
    std::uint32_t
    warpsPerCta() const
    {
        return ceilDiv(threadsPerCta(), warpSize);
    }

    /** Total CTAs in the grid. */
    std::uint64_t numCtas() const { return grid.count(); }
};

} // namespace vtsim

#endif // VTSIM_ISA_KERNEL_HH
