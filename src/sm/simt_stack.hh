/**
 * @file
 * Per-warp SIMT reconvergence stack (PDOM scheme). This is one of the
 * scheduling-limit structures the Virtual Thread architecture virtualises:
 * its contents are what gets saved/restored on a CTA swap, so its maximum
 * depth feeds the storage-overhead model (TAB-3).
 */

#ifndef VTSIM_SM_SIMT_STACK_HH
#define VTSIM_SM_SIMT_STACK_HH

#include <cstdint>
#include <vector>

#include "common/active_mask.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "sim/serializer.hh"

namespace vtsim {

class SimtStack
{
  public:
    /** One reconvergence frame. */
    struct Entry
    {
        Pc pc;
        Pc reconvergePc; ///< Pop when pc reaches this; invalidPc = never.
        ActiveMask mask;
    };

    /** Reset to a single frame at @p entry_pc with @p initial lanes. */
    void reset(ActiveMask initial, Pc entry_pc = 0);

    /** True when every lane has exited. */
    bool done() const { return stack_.empty(); }

    /** Current fetch PC. Inline: read on every issue-sweep visit. */
    Pc pc() const
    {
        VTSIM_ASSERT(!stack_.empty(), "pc() on finished warp");
        return stack_.back().pc;
    }

    /** Lanes executing at the current PC. */
    ActiveMask activeMask() const
    {
        VTSIM_ASSERT(!stack_.empty(), "activeMask() on finished warp");
        return stack_.back().mask;
    }

    /**
     * Advance past a non-branch instruction at the current PC, popping
     * reconvergence frames whose point is reached.
     */
    void advance();

    /**
     * Apply a branch executed at @p branch_pc: @p taken is the sub-mask of
     * active lanes taking it. Handles the uniform and divergent cases and
     * pushes frames per the PDOM scheme.
     */
    void branch(const Instruction &inst, Pc branch_pc, ActiveMask taken);

    /**
     * Retire the currently active lanes (EXIT): they are removed from
     * every frame; empty frames pop.
     */
    void exitActiveLanes();

    /** Current stack depth (frames). */
    std::uint32_t depth() const { return stack_.size(); }

    /** Deepest the stack has ever been (for overhead accounting). */
    std::uint32_t maxDepth() const { return maxDepth_; }

    const std::vector<Entry> &entries() const { return stack_; }

    // Checkpoint plumbing (driven by the owning WarpContext).
    void
    save(Serializer &ser) const
    {
        static_assert(std::is_trivially_copyable_v<Entry>);
        ser.putVec(stack_);
        ser.put(maxDepth_);
    }

    void
    restore(Deserializer &des)
    {
        des.getVec(stack_);
        des.get(maxDepth_);
    }

  private:
    void popReconverged();

    std::vector<Entry> stack_;
    std::uint32_t maxDepth_ = 0;
};

} // namespace vtsim

#endif // VTSIM_SM_SIMT_STACK_HH
