/**
 * @file
 * Persistent worker pool for sharded single-run simulation: the Gpu
 * epoch driver hands every worker the same epoch closure, each worker
 * ticks the SMs and memory partitions it owns, and the pool acts as
 * the epoch barrier. The calling (driver) thread participates as
 * worker 0, so a pool of N workers spawns only N - 1 threads.
 *
 * Ownership is static round-robin: worker w owns SM s iff s % N == w
 * and partition p iff p % N == w. That keeps the assignment trivially
 * deterministic (no load balancing decisions that could differ between
 * runs) — determinism comes from the epoch protocol, not from here.
 */

#ifndef VTSIM_GPU_SHARD_POOL_HH
#define VTSIM_GPU_SHARD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vtsim {

class ShardPool
{
  public:
    /** @p workers total workers including the driver; must be >= 2
     *  (a pool of one would just be the sequential loop). */
    explicit ShardPool(unsigned workers);
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    unsigned workers() const { return workers_; }

    /** True iff component index @p idx is owned by worker @p w. */
    bool owns(unsigned w, std::uint32_t idx) const
    { return idx % workers_ == w; }

    /**
     * Run @p fn(w) once per worker w in [0, workers()); worker 0 runs
     * on the calling thread. Returns when every worker has finished —
     * this return is the epoch barrier (all worker writes are visible
     * to the driver afterwards, and vice versa for the next epoch).
     */
    void runEpoch(const std::function<void(unsigned)> &fn);

  private:
    void workerLoop(unsigned w);

    /** Spin budget before falling back to the condition variable:
     *  epochs are short (tens of microseconds), so a bounded spin
     *  avoids paying wakeup latency on every barrier while still
     *  yielding the CPU when a worker is starved. */
    static constexpr int spinIters = 20000;

    unsigned workers_;
    std::vector<std::thread> threads_;

    const std::function<void(unsigned)> *fn_ = nullptr;
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<unsigned> remaining_{0};
    bool stop_ = false;

    std::mutex mu_;              ///< Guards stop_ and generation waits.
    std::condition_variable cv_; ///< Workers wait for a new generation.
    std::mutex doneMu_;
    std::condition_variable doneCv_; ///< Driver waits for remaining_ == 0.
};

} // namespace vtsim

#endif // VTSIM_GPU_SHARD_POOL_HH
