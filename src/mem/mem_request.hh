/**
 * @file
 * The memory transaction type that flows between the SM's LDST unit, the
 * caches, the interconnect and DRAM.
 */

#ifndef VTSIM_MEM_MEM_REQUEST_HH
#define VTSIM_MEM_MEM_REQUEST_HH

#include <cstdint>

#include "common/types.hh"
#include "sim/serializer.hh"

namespace vtsim {

/**
 * Receiver of memory responses. The SM-side LDST unit implements this; a
 * request carries a (sink, token) pair so the response can be routed back
 * without the memory system knowing anything about warps.
 */
class MemResponseSink
{
  public:
    virtual ~MemResponseSink() = default;

    /** Called when the transaction identified by @p token completes at
     *  cycle @p now. */
    virtual void memResponse(std::uint64_t token, Cycle now) = 0;
};

/** Kind of global-memory transaction. */
enum class MemAccessKind : std::uint8_t
{
    Load,   ///< Read that fills caches and unblocks a register.
    Store,  ///< Write-through; fire-and-forget from the warp's view.
    Atomic, ///< Read-modify-write performed at the L2; bypasses L1.
};

/** One line-granular memory transaction. */
struct MemRequest
{
    Addr lineAddr = 0;           ///< Line-aligned byte address.
    std::uint32_t bytes = 0;     ///< Payload size (for DRAM bandwidth).
    MemAccessKind kind = MemAccessKind::Load;
    SmId srcSm = 0;
    /** Issuing grid (Gpu::launchConcurrent); per-grid cache and DRAM
     *  counters attribute by this tag. Solo launches use grid 0. */
    GridId grid = 0;
    MemResponseSink *sink = nullptr; ///< Null for stores (no response).
    std::uint64_t token = 0;
};

/**
 * Checkpoint a request. The sink pointer is process-local, so only its
 * presence is recorded; restore rebinds it through the Deserializer's
 * sink resolver (srcSm -> the owning SM's LdstUnit).
 */
inline void
saveMemRequest(Serializer &ser, const MemRequest &req)
{
    ser.put(req.lineAddr);
    ser.put(req.bytes);
    ser.put(req.kind);
    ser.put(req.srcSm);
    ser.put(req.grid);
    ser.put<std::uint8_t>(req.sink ? 1 : 0);
    ser.put(req.token);
}

inline MemRequest
restoreMemRequest(Deserializer &des)
{
    MemRequest req;
    des.get(req.lineAddr);
    des.get(req.bytes);
    des.get(req.kind);
    des.get(req.srcSm);
    des.get(req.grid);
    const bool has_sink = des.get<std::uint8_t>() != 0;
    des.get(req.token);
    req.sink = has_sink ? des.resolveSink(req.srcSm) : nullptr;
    return req;
}

} // namespace vtsim

#endif // VTSIM_MEM_MEM_REQUEST_HH
