/**
 * @file
 * Per-partition DRAM channel model: banked, open-row, FR-FCFS scheduled.
 *
 * Requests queue at the channel; each cycle the scheduler issues up to
 * two commands, preferring row-buffer hits within a bounded reorder
 * window (First-Ready FCFS) — the policy GPUs rely on to keep row
 * locality when many CTAs' streams interleave, and therefore essential
 * for evaluating Virtual Thread's extra thread-level parallelism fairly.
 */

#ifndef VTSIM_MEM_DRAM_HH
#define VTSIM_MEM_DRAM_HH

#include <array>
#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "sim/sim_component.hh"
#include "stats/stats.hh"

namespace vtsim::telemetry {
class TraceJsonWriter;
}

namespace vtsim {

/** DRAM channel parameters. */
struct DramParams
{
    std::string name = "dram";
    std::uint32_t numBanks = 8;
    std::uint32_t rowBufferBytes = 2048;
    std::uint32_t rowHitLatency = 200;   ///< Request-to-data latency.
    std::uint32_t rowMissLatency = 350;
    /** Cycles the bank itself is occupied (commands pipeline; the rest
     *  of the latency overlaps with other banks' work). */
    std::uint32_t rowHitOccupancy = 4;
    std::uint32_t rowMissOccupancy = 40;
    std::uint32_t bytesPerCycle = 32;
    std::uint32_t lineSize = 128;
    std::uint32_t schedWindow = 32;   ///< FR-FCFS reorder window.
    std::uint32_t commandsPerCycle = 2;
    /** Line-interleave factor of the chip (number of partitions): lines
     *  are renumbered partition-locally before bank/row decomposition so
     *  partition and bank selection use disjoint address bits. */
    std::uint32_t addressStride = 1;
};

class Dram : public SimComponent
{
  public:
    explicit Dram(const DramParams &params);

    /**
     * Queue one line transaction arriving at @p now.
     * @param needs_completion True for reads: the line address will be
     *        reported by tick() when the data transfer finishes.
     */
    void enqueue(Addr line_addr, std::uint32_t bytes,
                 bool needs_completion, Cycle now, GridId grid = 0);

    /**
     * Advance one cycle: issue commands (FR-FCFS) and collect finished
     * reads. Named advance() rather than SimComponent::tick() because it
     * returns the completed lines to its owning MemoryPartition — the
     * partition is the registered timed component; the channel rides
     * inside it.
     * @return Line addresses of reads whose data completed this cycle.
     */
    std::vector<Addr> advance(Cycle now);

    /** No requests queued or in flight. */
    bool idle() const;

    /**
     * Earliest cycle >= @p now at which advance() might complete a read
     * or issue a command: the earliest in-flight completion, or the
     * earliest cycle a bank with a schedulable request frees up.
     * neverCycle when the channel is idle.
     */
    Cycle nextEventCycle(Cycle now) override;

    // SimComponent lifecycle.
    void reset() override;
    void save(Serializer &ser) const override;
    void restore(Deserializer &des) override;

    StatGroup &stats() { return stats_; }
    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowMisses() const { return rowMisses_.value(); }
    std::uint64_t bytesTransferred() const { return bytes_.value(); }

    /** Per-grid row hit/miss/bytes split (concurrent launches). The
     *  aggregates above are unchanged: both legs count every command. */
    std::uint64_t gridRowHits(GridId g) const
    { return gridRowHits_.at(g).value(); }
    std::uint64_t gridRowMisses(GridId g) const
    { return gridRowMisses_.at(g).value(); }
    std::uint64_t gridBytes(GridId g) const
    { return gridBytes_.at(g).value(); }

    /** Route command-issue events to a per-Gpu Perfetto writer as
     *  instants on (pid = @p pid, tid = bank); null disables. */
    void setTraceJson(telemetry::TraceJsonWriter *writer, std::uint32_t pid)
    {
        traceJson_ = writer;
        tracePid_ = pid;
    }

  private:
    struct Request
    {
        Addr lineAddr;
        std::uint32_t bytes;
        bool needsCompletion;
        std::uint32_t bank;
        std::uint64_t row;
        GridId grid = 0;
    };

    struct Completion
    {
        Cycle readyAt;
        Addr lineAddr;
        bool needsCompletion;
        /** Total order (see LdstUnit::HitCompletion): pop order must
         *  depend on state only, so checkpoint restore cannot reorder
         *  same-cycle ties. */
        bool operator>(const Completion &o) const
        {
            if (readyAt != o.readyAt)
                return readyAt > o.readyAt;
            if (lineAddr != o.lineAddr)
                return lineAddr > o.lineAddr;
            return needsCompletion > o.needsCompletion;
        }
    };

    struct Bank
    {
        std::uint64_t openRow = ~0ull;
        Cycle readyAt = 0;
    };

    bool issueOne(Cycle now);

    DramParams params_;
    std::vector<Bank> banks_;
    std::deque<Request> queue_;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>> inFlight_;
    Cycle busReadyAt_ = 0;

    StatGroup stats_;
    Counter rowHits_;
    Counter rowMisses_;
    Counter bytes_;
    std::array<Counter, maxGrids> gridRowHits_;
    std::array<Counter, maxGrids> gridRowMisses_;
    std::array<Counter, maxGrids> gridBytes_;
    ScalarStat queueDepth_;
    telemetry::TraceJsonWriter *traceJson_ = nullptr;
    std::uint32_t tracePid_ = 0;
};

} // namespace vtsim

#endif // VTSIM_MEM_DRAM_HH
