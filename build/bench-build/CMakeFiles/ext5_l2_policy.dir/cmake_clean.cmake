file(REMOVE_RECURSE
  "../bench/ext5_l2_policy"
  "../bench/ext5_l2_policy.pdb"
  "CMakeFiles/ext5_l2_policy.dir/ext5_l2_policy.cc.o"
  "CMakeFiles/ext5_l2_policy.dir/ext5_l2_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext5_l2_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
