file(REMOVE_RECURSE
  "../bench/fig4_virtual_cta_sweep"
  "../bench/fig4_virtual_cta_sweep.pdb"
  "CMakeFiles/fig4_virtual_cta_sweep.dir/fig4_virtual_cta_sweep.cc.o"
  "CMakeFiles/fig4_virtual_cta_sweep.dir/fig4_virtual_cta_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_virtual_cta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
