file(REMOVE_RECURSE
  "../bench/ext3_energy"
  "../bench/ext3_energy.pdb"
  "CMakeFiles/ext3_energy.dir/ext3_energy.cc.o"
  "CMakeFiles/ext3_energy.dir/ext3_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext3_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
