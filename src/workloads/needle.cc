/**
 * @file
 * Needleman-Wunsch-style row sweep (Rodinia "nw" archetype): each thread
 * advances one column of a banded alignment DP across L rows, streaming
 * the previous row from global memory with a serial dependence through
 * the running cell. One outstanding load per warp, no reusable working
 * set: the purest latency-bound shape. Tiny 32-thread CTAs hold the
 * baseline at 8 warps per SM — the paper's worst-case occupancy — so
 * this is the archetype of its biggest Virtual Thread winners.
 */

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

constexpr std::uint32_t kRows = 24;

class Needle : public Workload
{
  public:
    explicit Needle(std::uint32_t scale)
        : n_(scale == 0 ? 256 : 8192 * scale)
    {}

    std::string name() const override { return "needle"; }

    std::string
    description() const override
    {
        return "banded alignment row sweep, serial dependent loads";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        // prev is laid out row-major as prev[j * n + t]: a warp's load of
        // one row is a single coalesced line, consumed exactly once.
        return assemble(R"(
.kernel needle
    ldp r0, 0            # prev rows (L x n words)
    ldp r1, 1            # out
    ldp r2, 2            # n
    ldp r3, 3            # L
    s2r r4, ctaid.x
    s2r r5, ntid.x
    s2r r6, tid.x
    imad r7, r4, r5, r6  # t
    isetp.ge r8, r7, r2
    bra r8, done
    movi r9, 0           # cell
    movi r10, 0          # j
    shl r11, r7, 2
    iadd r11, r11, r0    # &prev[0*n + t]
    shl r12, r2, 2       # row stride in bytes
jloop:
    ldg r13, [r11]       # p = prev[j*n + t]
    xor r14, r13, r7
    and r14, r14, 1
    movi r15, -1
    movi r16, 2
    sel r14, r16, r15, r14   # score = ((p ^ t) & 1) ? 2 : -1
    iadd r14, r13, r14       # p + score
    iadd r9, r9, -1          # cell - 1
    imax r9, r9, r14         # cell = max(cell - 1, p + score)
    iadd r11, r11, r12
    iadd r10, r10, 1
    isetp.lt r17, r10, r3
    bra r17, jloop
    shl r18, r7, 2
    iadd r18, r18, r1
    stg [r18], r9
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd0e);
        std::vector<std::uint32_t> prev(std::size_t(kRows) * n_);
        for (auto &v : prev)
            v = rng.nextBelow(64);
        prevAddr_ = gmem.alloc(prev.size() * 4);
        outAddr_ = gmem.alloc(n_ * 4);
        gmem.writeWords(prevAddr_, prev);

        expected_.resize(n_);
        for (std::uint32_t t = 0; t < n_; ++t) {
            std::int32_t cell = 0;
            for (std::uint32_t j = 0; j < kRows; ++j) {
                const std::uint32_t p = prev[std::size_t(j) * n_ + t];
                const std::int32_t score = ((p ^ t) & 1) ? 2 : -1;
                cell = std::max(cell - 1,
                                static_cast<std::int32_t>(p) + score);
            }
            expected_[t] = static_cast<std::uint32_t>(cell);
        }

        LaunchParams lp;
        lp.cta = Dim3(32);
        lp.grid = Dim3(ceilDiv(n_, 32));
        lp.params = {std::uint32_t(prevAddr_), std::uint32_t(outAddr_),
                     n_, kRows};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readWords(outAddr_, n_);
        for (std::uint32_t t = 0; t < n_; ++t)
            if (got[t] != expected_[t])
                return false;
        return true;
    }

  private:
    std::uint32_t n_;
    Addr prevAddr_ = 0, outAddr_ = 0;
    std::vector<std::uint32_t> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeNeedle(std::uint32_t scale)
{
    return std::make_unique<Needle>(scale);
}

} // namespace vtsim
