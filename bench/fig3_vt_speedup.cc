/**
 * @file
 * FIG-3 (headline result): IPC of the Virtual Thread machine normalised
 * to the baseline, per benchmark plus geometric mean. The paper reports
 * +23.9% on average; the shape to reproduce is large gains on
 * scheduling-limited memory-bound kernels, ~none on capacity-limited or
 * compute-bound ones, and no significant slowdowns.
 */

#include <cstdio>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-3", "VT speedup over baseline (IPC ratio)");

    const GpuConfig base_cfg = GpuConfig::fermiLike();
    GpuConfig vt_cfg = base_cfg;
    vt_cfg.vtEnabled = true;

    const auto names = benchmarkNames();
    std::vector<RunSpec> specs;
    for (const auto &name : names) {
        specs.push_back({name, base_cfg, benchScale});
        specs.push_back({name, vt_cfg, benchScale});
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s %-20s %10s %10s %8s %8s\n", "benchmark", "class",
                "base-IPC", "vt-IPC", "speedup", "swaps");
    std::vector<double> ratios;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto wl = makeWorkload(names[i], benchScale);
        const RunResult &base = results[2 * i];
        const RunResult &vt = results[2 * i + 1];
        const double ratio =
            double(base.stats.cycles) / double(vt.stats.cycles);
        ratios.push_back(ratio);
        std::printf("%-14s %-20s %10.3f %10.3f %7.2fx %8llu\n",
                    names[i].c_str(),
                    toString(wl->expectedClass()).c_str(), base.stats.ipc,
                    vt.stats.ipc, ratio,
                    (unsigned long long)vt.stats.swapOuts);
    }
    std::printf("%-14s %-20s %10s %10s %7.2fx\n", "GMEAN", "", "", "",
                geomean(ratios));
    std::printf("(paper reports +23.9%% average on its suite)\n");
    return 0;
}
