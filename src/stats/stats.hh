/**
 * @file
 * Lightweight statistics registry in the spirit of gem5's Stats package.
 *
 * Components own Counter/Histogram members and register them with a
 * StatGroup so the whole tree can be dumped as text after simulation.
 */

#ifndef VTSIM_STATS_STATS_HH
#define VTSIM_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace vtsim {

/** A simple monotonically increasing event counter. */
class Counter
{
  public:
    void operator+=(std::uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    /** Set the raw value — checkpoint restore only. */
    void restoreState(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/** Running scalar statistic: count, sum, min, max, mean. */
class ScalarStat
{
  public:
    void sample(double v);

    /**
     * Record @p n consecutive samples of the same value @p v —
     * bit-identical to calling sample(v) @p n times (the sum is
     * accumulated by repeated addition, not v * n, so fast-forwarded
     * simulations reproduce the naive loop's floating-point result
     * exactly).
     */
    void sampleN(double v, std::uint64_t n);
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }
    void reset();

    /** Raw accessors and setter for checkpoint save/restore. */
    double rawMin() const { return min_; }
    double rawMax() const { return max_; }
    void
    restoreState(std::uint64_t count, double sum, double min, double max)
    {
        count_ = count;
        sum_ = sum;
        min_ = min;
        max_ = max;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram over [0, bucketCount * bucketWidth). */
class Histogram
{
  public:
    Histogram(std::uint32_t bucket_count = 16, double bucket_width = 1.0);

    void sample(double v);
    std::uint64_t total() const { return total_; }
    std::uint64_t bucket(std::uint32_t i) const { return buckets_.at(i); }
    std::uint32_t bucketCount() const { return buckets_.size(); }
    double bucketWidth() const { return bucketWidth_; }
    /** Samples that fell outside [0, bucketCount * bucketWidth). */
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Value below which fraction @p p (in [0, 1]) of the samples fall,
     * reported as the upper edge of the bucket holding that rank.
     * Samples in the overflow bucket report the histogram range's upper
     * edge; an empty histogram reports 0.
     */
    double percentile(double p) const
    { return percentileOf(buckets_, overflow_, bucketWidth_, p); }

    /**
     * percentile() over an explicit bucket array — used by the interval
     * sampler to take percentiles of per-interval bucket *deltas*
     * without materialising a Histogram.
     */
    static double percentileOf(const std::vector<std::uint64_t> &buckets,
                               std::uint64_t overflow, double bucket_width,
                               double p);

    void reset();

    /** Replace the full bucket state — checkpoint restore only. */
    void
    restoreState(const std::vector<std::uint64_t> &buckets,
                 std::uint64_t overflow, std::uint64_t total)
    {
        // Bucket geometry is config-derived, so a restore into a
        // same-config histogram must match shapes exactly.
        if (buckets.size() != buckets_.size())
            VTSIM_PANIC("histogram restore: ", buckets.size(),
                        " buckets into ", buckets_.size());
        buckets_ = buckets;
        overflow_ = overflow;
        total_ = total;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    double bucketWidth_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Named collection of statistics owned by one component.
 *
 * Registration stores pointers; the registering component must outlive the
 * group (both normally live inside the same object).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &name, const Counter *c,
                    const std::string &desc);
    /**
     * Register a raw monotonic counter that lives as a plain uint64
     * field (e.g. one leg of a breakdown struct) rather than a Counter.
     * Walked and dumped exactly like a Counter.
     */
    void addValue(const std::string &name, const std::uint64_t *v,
                  const std::string &desc);
    void addScalar(const std::string &name, const ScalarStat *s,
                   const std::string &desc);
    void addHistogram(const std::string &name, const Histogram *h,
                      const std::string &desc);

    const std::string &name() const { return name_; }

    /** Look up a registered counter value by name; 0 when unknown. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Dump every registered stat, one per line, prefixed by group name. */
    void dump(std::ostream &os) const;

    struct CounterEntry { const Counter *stat; std::string desc; };
    struct ValueEntry { const std::uint64_t *stat; std::string desc; };
    struct ScalarEntry { const ScalarStat *stat; std::string desc; };
    struct HistEntry { const Histogram *stat; std::string desc; };

    // Entry walkers for the telemetry StatRegistry (telemetry/): name ->
    // entry, in the maps' (sorted) iteration order.
    const std::map<std::string, CounterEntry> &counters() const
    { return counters_; }
    const std::map<std::string, ValueEntry> &values() const
    { return values_; }
    const std::map<std::string, ScalarEntry> &scalars() const
    { return scalars_; }
    const std::map<std::string, HistEntry> &histograms() const
    { return histograms_; }

  private:
    std::string name_;
    std::map<std::string, CounterEntry> counters_;
    std::map<std::string, ValueEntry> values_;
    std::map<std::string, ScalarEntry> scalars_;
    std::map<std::string, HistEntry> histograms_;
};

} // namespace vtsim

#endif // VTSIM_STATS_STATS_HH
