#include "parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string_view>
#include <thread>

#include "common/log.hh"
#include "common/logger.hh"
#include "common/trace.hh"
#include "service/stats_json.hh"
#include "service/worker_pool.hh"

namespace vtsim::bench {

namespace {

/** Strictly parse a job count: an integer >= 1 or a fatal error —
 *  "--jobs 0" or "--jobs banana" must not silently fall back. */
unsigned
parseJobs(const char *text, const char *origin)
{
    char *end = nullptr;
    errno = 0;
    const long n = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || n < 1) {
        VTSIM_FATAL("invalid job count '", text, "' from ", origin,
                    " (expected an integer >= 1)");
    }
    return static_cast<unsigned>(n);
}

} // namespace

unsigned
resolveJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--jobs") {
            if (i + 1 >= argc)
                VTSIM_FATAL("--jobs needs a value");
            return parseJobs(argv[i + 1], "--jobs");
        }
        if (arg.substr(0, 7) == "--jobs=")
            return parseJobs(argv[i] + 7, "--jobs");
    }
    if (const char *env = std::getenv("VTSIM_JOBS"))
        return parseJobs(env, "VTSIM_JOBS");
    const unsigned hw = std::thread::hardware_concurrency();
    return hw < 1 ? 1 : hw;
}

std::vector<RunResult>
runAll(const std::vector<RunSpec> &specs, unsigned jobs)
{
    std::vector<RunResult> results(specs.size());
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    bool have_error = false;
    std::size_t error_index = 0;
    std::string error_what;

    unsigned pool_size = static_cast<unsigned>(
        std::min<std::size_t>(jobs ? jobs : 1, specs.size()));
    if (pool_size < 1)
        pool_size = 1;
    if (pool_size > 1 && Trace::instance().anyEnabled()) {
        // The textual Trace sink is process-global and unsynchronized
        // (trace.hh); concurrent Gpus would interleave its lines.
        std::fprintf(stderr, "[parallel-runner] global trace sink "
                             "enabled; forcing jobs=1\n");
        pool_size = 1;
    }

    // --jobs and --sim-threads multiply: each of the pool's workers
    // shards its simulation across simThreads threads. Oversubscribing
    // the host only adds scheduler thrash (every run still finishes
    // bit-identically), so when the product exceeds the hardware
    // thread count, the job count wins — independent runs scale near-
    // linearly while epoch barriers cap intra-run speedup — and the
    // shard count is trimmed to fit. A single-job batch is exempt:
    // there is no composition to arbitrate, and an explicit
    // "--jobs 1 --sim-threads N" (the determinism/TSan harness shape)
    // must actually shard even on a small host.
    const TelemetryOptions &telemetry = telemetryOptions();
    if (telemetry.simThreads > 1 && pool_size > 1) {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        if (static_cast<std::uint64_t>(pool_size) * telemetry.simThreads >
            hw) {
            const unsigned capped = std::max(1u, hw / pool_size);
            std::fprintf(stderr,
                         "[parallel-runner] jobs=%u x sim-threads=%u "
                         "oversubscribes %u hardware threads; capping "
                         "sim-threads at %u\n",
                         pool_size, telemetry.simThreads, hw, capped);
            TelemetryOptions adjusted = telemetry;
            adjusted.simThreads = capped;
            setTelemetryOptions(adjusted);
        }
    }

    // Dispense spec indices to the shared worker pool (the same
    // WorkerPool/GpuArena the vtsimd job service schedules onto):
    // every run is hermetic, each worker reuses its arena while
    // consecutive specs share a config.
    const service::WorkerPool::Source source =
        [&](service::WorkerPool::Task &out, unsigned) {
            const std::size_t i = next.fetch_add(1);
            if (i >= specs.size())
                return false;
            out = [&specs, &results, &error_mutex, &have_error,
                   &error_index, &error_what,
                   i](service::GpuArena &arena, unsigned) {
                const RunSpec &spec = specs[i];
                try {
                    GpuConfig config = spec.config;
                    applyExecMode(config);
                    Gpu &gpu = arena.acquire(config);
                    if (spec.kernels.size() > 1) {
                        results[i] = runCoRunOn(gpu, spec.kernels,
                                                spec.sharePolicy,
                                                spec.scale, i);
                    } else {
                        results[i] = runWorkloadOn(gpu, spec.workload,
                                                   spec.scale, i);
                    }
                } catch (const std::exception &e) {
                    arena.discard(); // Never reuse a mid-launch arena.
                    const std::lock_guard<std::mutex> guard(error_mutex);
                    // Every failure is logged with its spec index, not
                    // just the one that gets rethrown.
                    logging::error("parallel-runner", "spec ", i, " ('",
                                   spec.workload, "') failed: ",
                                   e.what());
                    if (!have_error) {
                        have_error = true;
                        error_index = i;
                        error_what = e.what();
                    }
                } catch (...) {
                    arena.discard();
                    const std::lock_guard<std::mutex> guard(error_mutex);
                    logging::error("parallel-runner", "spec ", i, " ('",
                                   spec.workload,
                                   "') failed: unknown exception");
                    if (!have_error) {
                        have_error = true;
                        error_index = i;
                        error_what = "unknown exception";
                    }
                }
            };
            return true;
        };

    const auto start = std::chrono::steady_clock::now();
    {
        // inline_single: --jobs 1 stays a plain sequential loop on
        // this thread, trivial to debug and profile.
        service::WorkerPool pool(pool_size, source,
                                 /*inline_single=*/true);
        pool.join();
    }
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    if (have_error) {
        VTSIM_FATAL("spec ", error_index, " ('",
                    specs[error_index].workload,
                    "') failed: ", error_what);
    }

    std::uint64_t cycles = 0;
    std::uint64_t thread_instructions = 0;
    for (const RunResult &r : results) {
        cycles += r.stats.cycles;
        thread_instructions += r.stats.threadInstructions;
    }
    const double safe_wall = wall > 0.0 ? wall : 1e-9;
    std::fprintf(stderr,
                 "[parallel-runner] %zu runs, jobs=%u: wall %.3fs, "
                 "%.1f Kcyc/s, %.2f MIPS\n",
                 specs.size(), pool_size, wall,
                 cycles / safe_wall / 1e3,
                 thread_instructions / safe_wall / 1e6);
    return results;
}

std::vector<RunResult>
runAll(const std::vector<RunSpec> &specs, int argc, char **argv)
{
    setTelemetryOptions(parseTelemetryArgs(argc, argv));
    const auto start = std::chrono::steady_clock::now();
    auto results = runAll(specs, resolveJobs(argc, argv));
    const double batch_wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    const TelemetryOptions &opts = telemetryOptions();
    if (!opts.statsJsonPath.empty())
        writeStatsJson(opts.statsJsonPath, specs, results, batch_wall);
    return results;
}

void
writeStatsJson(const std::string &path,
               const std::vector<RunSpec> &specs,
               const std::vector<RunResult> &results,
               double batchWallSeconds)
{
    VTSIM_ASSERT(specs.size() == results.size(),
                 "stats JSON with mismatched specs/results");
    std::ofstream os(path);
    if (!os)
        VTSIM_FATAL("cannot open stats-json file '", path, "'");

    std::vector<service::RunRecord> runs;
    runs.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        service::RunRecord run;
        run.workload = results[i].workload;
        run.scale = specs[i].scale;
        run.config = specs[i].config;
        run.verified = results[i].verified;
        run.wallSeconds = results[i].wallSeconds;
        run.maxSimtDepth = results[i].maxSimtDepth;
        run.stats = results[i].stats;
        run.intervalSeries = results[i].intervalSeries;
        run.grids = results[i].grids;
        if (specs[i].kernels.size() > 1)
            run.sharePolicy = toString(specs[i].sharePolicy);
        runs.push_back(std::move(run));
    }

    // The batch header carries the [sim-rate]/[parallel-runner]
    // stderr numbers in machine-readable form.
    const TelemetryOptions &opts = telemetryOptions();
    service::BatchMeta meta;
    double wall = batchWallSeconds;
    if (wall <= 0.0) {
        for (const RunResult &r : results)
            wall += r.wallSeconds;
    }
    meta.wallMs = wall * 1e3;
    meta.simThreads = opts.simThreads;
    if (!opts.execMode.empty())
        meta.execMode = opts.execMode;
    std::uint64_t cycles = 0;
    std::uint64_t thread_instructions = 0;
    for (const RunResult &r : results) {
        cycles += r.stats.cycles;
        thread_instructions += r.stats.threadInstructions;
    }
    if (wall > 0.0) {
        meta.kcyclesPerSec = double(cycles) / wall / 1e3;
        meta.mips = double(thread_instructions) / wall / 1e6;
    }
    service::writeStatsJson(os, runs, /*service=*/nullptr, meta);
}

} // namespace vtsim::bench
