#include "service/worker_pool.hh"

#include <exception>

#include "common/log.hh"
#include "common/logger.hh"

namespace vtsim::service {

WorkerPool::WorkerPool(unsigned workers, Source source,
                       bool inline_single)
    : workers_(workers < 1 ? 1 : workers),
      source_(std::move(source)),
      inlineSingle_(inline_single && workers_ == 1)
{
    VTSIM_ASSERT(source_, "worker pool needs a task source");
    if (inlineSingle_)
        return;
    threads_.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

WorkerPool::~WorkerPool()
{
    join();
}

void
WorkerPool::join()
{
    if (inlineSingle_) {
        inlineSingle_ = false; // Run the sequential loop exactly once.
        workerLoop(0);
        return;
    }
    for (auto &t : threads_) {
        if (t.joinable())
            t.join();
    }
}

void
WorkerPool::workerLoop(unsigned worker)
{
    GpuArena arena;
    Task task;
    while (source_(task, worker)) {
        try {
            task(arena, worker);
        } catch (const std::exception &e) {
            // Tasks own their error handling (see file comment); a
            // throw escaping one is a bug, but a service worker must
            // survive it.
            logging::error("worker-pool", "BUG: task on worker ",
                           worker, " threw: ", e.what());
            arena.discard();
        } catch (...) {
            logging::error("worker-pool", "BUG: task on worker ",
                           worker, " threw a non-exception");
            arena.discard();
        }
        task = nullptr; // Release captured state between tasks.
    }
}

} // namespace vtsim::service
