/**
 * @file
 * Unit tests for GpuConfig: presets, validation, printing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hh"
#include "config/gpu_config.hh"

namespace vtsim {
namespace {

TEST(GpuConfig, PresetsValidate)
{
    EXPECT_NO_THROW(GpuConfig::fermiLike().validate());
    EXPECT_NO_THROW(GpuConfig::keplerLike().validate());
    EXPECT_NO_THROW(GpuConfig::testMini().validate());
}

TEST(GpuConfig, FermiShape)
{
    const GpuConfig cfg = GpuConfig::fermiLike();
    EXPECT_EQ(cfg.numSms, 15u);
    EXPECT_EQ(cfg.maxWarpsPerSm, 48u);
    EXPECT_EQ(cfg.maxCtasPerSm, 8u);
    EXPECT_EQ(cfg.maxThreadsPerSm, 1536u);
    EXPECT_EQ(cfg.registersPerSm, 32768u);
    EXPECT_EQ(cfg.sharedMemPerSm, 48u * 1024);
    EXPECT_FALSE(cfg.vtEnabled);
}

TEST(GpuConfig, KeplerIsBigger)
{
    const GpuConfig f = GpuConfig::fermiLike();
    const GpuConfig k = GpuConfig::keplerLike();
    EXPECT_GT(k.maxWarpsPerSm, f.maxWarpsPerSm);
    EXPECT_GT(k.maxCtasPerSm, f.maxCtasPerSm);
    EXPECT_GT(k.registersPerSm, f.registersPerSm);
}

TEST(GpuConfig, EffectiveLimitsScaleWithMultiplier)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.schedLimitMultiplier = 2;
    EXPECT_EQ(cfg.effMaxWarpsPerSm(), 96u);
    EXPECT_EQ(cfg.effMaxCtasPerSm(), 16u);
    EXPECT_EQ(cfg.effMaxThreadsPerSm(), 3072u);
}

TEST(GpuConfig, RejectsZeroSms)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.numSms = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsMismatchedLineSizes)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.l2LineSize = 64;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsNonPow2LineSize)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.l1LineSize = 100;
    cfg.l2LineSize = 100;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsIndivisibleCacheShape)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.l1Size = 1000;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsNonPow2SharedBanks)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.sharedMemBanks = 12;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsVtBudgetBelowSchedulingLimit)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    cfg.vtMaxVirtualCtasPerSm = 4; // < maxCtasPerSm = 8
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsVtPlusMultiplier)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    cfg.schedLimitMultiplier = 2;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, RejectsZeroMultiplier)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.schedLimitMultiplier = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(GpuConfig, VtBudgetZeroMeansCapacityBound)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    cfg.vtMaxVirtualCtasPerSm = 0;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(GpuConfig, PrintMentionsKeyParameters)
{
    GpuConfig cfg = GpuConfig::fermiLike();
    cfg.vtEnabled = true;
    std::ostringstream os;
    cfg.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("SMs"), std::string::npos);
    EXPECT_NE(out.find("48"), std::string::npos);
    EXPECT_NE(out.find("Virtual Thread"), std::string::npos);
    EXPECT_NE(out.find("ENABLED"), std::string::npos);
    EXPECT_NE(out.find("swap"), std::string::npos);
}

TEST(GpuConfig, PolicyNames)
{
    EXPECT_EQ(toString(SchedulerPolicy::LooseRoundRobin), "lrr");
    EXPECT_EQ(toString(SchedulerPolicy::GreedyThenOldest), "gto");
    EXPECT_EQ(toString(SchedulerPolicy::TwoLevel), "two-level");
    EXPECT_EQ(toString(VtSwapTrigger::AllWarpsStalled),
              "all-warps-stalled");
    EXPECT_EQ(toString(VtSwapTrigger::AnyWarpStalled), "any-warp-stalled");
    EXPECT_EQ(toString(VtSwapInPolicy::ReadyFirst), "ready-first");
    EXPECT_EQ(toString(VtSwapInPolicy::OldestFirst), "oldest-first");
}

} // namespace
} // namespace vtsim
