/**
 * @file
 * Prometheus text-format exposition of a StatRegistry.
 *
 * One naming scheme for simulator and service metrics: a registry
 * probe at dotted path "service.jobs_submitted" becomes the metric
 * family "vtsim_service_jobs_submitted" ('.' and any other character
 * outside [a-zA-Z0-9_] map to '_'; the prefix keeps names valid and
 * grep-able). Per probe kind:
 *
 *   Counter probe   <name>_total                  TYPE counter
 *   value probe     <name>                        TYPE gauge
 *   ScalarStat      <name>_count/_sum/_min/_max   TYPE gauge each
 *   Histogram       <name>_bucket{le="..."} (cumulative, fixed-width
 *                   edges plus le="+Inf") and <name>_count
 *                                                 TYPE histogram
 *
 * Histogram families intentionally omit <name>_sum — vtsim Histograms
 * track per-bucket counts only; pair each with a ScalarStat under a
 * distinct name when a sum is needed (JobService does).
 *
 * Every family gets a "# HELP" line carrying the original dotted
 * path, so a scrape can be mapped back to registry probes exactly.
 */

#ifndef VTSIM_TELEMETRY_PROMETHEUS_HH
#define VTSIM_TELEMETRY_PROMETHEUS_HH

#include <ostream>
#include <string>

#include "telemetry/stat_registry.hh"

namespace vtsim::telemetry {

/** Sanitized "<prefix>_<dotted path>" metric family name. */
std::string prometheusName(const std::string &prefix,
                           const std::string &path);

/** Write every probe of @p registry in Prometheus text format. */
void writePrometheus(std::ostream &os, const StatRegistry &registry,
                     const std::string &prefix = "vtsim");

} // namespace vtsim::telemetry

#endif // VTSIM_TELEMETRY_PROMETHEUS_HH
