/**
 * @file
 * Bitonic sort of per-CTA chunks in shared memory — the barrier-bound
 * archetype: log^2(n) compare-exchange stages with a CTA barrier after
 * every stage. Memory traffic is one load and one store per element;
 * nearly all stall time is barrier synchronisation, which Virtual
 * Thread cannot (and should not) hide — the suite's control for
 * barrier-limited behaviour.
 */

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

constexpr std::uint32_t kChunk = 256;

class Bitonic : public Workload
{
  public:
    explicit Bitonic(std::uint32_t scale)
        : n_(scale == 0 ? 512 : 65536 * scale)
    {}

    std::string name() const override { return "bitonic"; }

    std::string
    description() const override
    {
        return "per-CTA bitonic sort in shared memory, barrier-bound";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        // One element per thread; the lower-index thread of each pair
        // performs the compare-exchange, so every slot has one writer
        // per stage and the single barrier per stage suffices.
        return assemble(R"(
.kernel bitonic
.shared 1024
    ldp r0, 0            # in
    ldp r1, 1            # out
    s2r r2, ctaid.x
    s2r r3, ntid.x
    s2r r4, tid.x
    imad r5, r2, r3, r4  # gid
    shl r6, r5, 2
    iadd r6, r6, r0
    ldg r7, [r6]
    shl r8, r4, 2        # my slot (bytes)
    sts [r8], r7
    bar
    movi r9, 2           # k
kloop:
    shr r10, r9, 1       # j
jloop:
    xor r11, r4, r10     # partner index
    isetp.le r12, r11, r4
    bra r12, skip, join=sync
    shl r11, r11, 2      # partner slot (bytes)
    lds r12, [r11]       # partner value
    lds r13, [r8]        # my value
    and r14, r4, r9
    isetp.eq r14, r14, 0 # ascending when (tid & k) == 0
    isetp.gt r15, r13, r12
    isetp.lt r2, r13, r12
    sel r14, r15, r2, r14    # out of order?
    sel r15, r12, r13, r14   # new mine
    sel r2, r13, r12, r14    # new partner
    sts [r8], r15
    sts [r11], r2
skip:
    nop
sync:
    bar
    shr r10, r10, 1
    isetp.gt r2, r10, 0
    bra r2, jloop
    shl r9, r9, 1
    isetp.le r2, r9, r3
    bra r2, kloop
    lds r6, [r8]
    shl r7, r5, 2
    iadd r7, r7, r1
    stg [r7], r6
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd10);
        std::vector<std::uint32_t> in(n_);
        for (auto &v : in)
            v = rng.nextBelow(1u << 30); // positive under signed compare
        inAddr_ = gmem.alloc(n_ * 4);
        outAddr_ = gmem.alloc(n_ * 4);
        gmem.writeWords(inAddr_, in);

        expected_ = in;
        for (std::uint32_t c = 0; c < n_ / kChunk; ++c) {
            std::sort(expected_.begin() + std::size_t(c) * kChunk,
                      expected_.begin() + std::size_t(c + 1) * kChunk);
        }

        LaunchParams lp;
        lp.cta = Dim3(kChunk);
        lp.grid = Dim3(n_ / kChunk);
        lp.params = {std::uint32_t(inAddr_), std::uint32_t(outAddr_)};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readWords(outAddr_, n_);
        for (std::uint32_t i = 0; i < n_; ++i)
            if (got[i] != expected_[i])
                return false;
        return true;
    }

  private:
    std::uint32_t n_;
    Addr inAddr_ = 0, outAddr_ = 0;
    std::vector<std::uint32_t> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeBitonic(std::uint32_t scale)
{
    return std::make_unique<Bitonic>(scale);
}

} // namespace vtsim
