file(REMOVE_RECURSE
  "CMakeFiles/run_benchmark.dir/run_benchmark.cc.o"
  "CMakeFiles/run_benchmark.dir/run_benchmark.cc.o.d"
  "run_benchmark"
  "run_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
