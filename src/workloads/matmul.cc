/**
 * @file
 * Tiled dense matrix multiply with shared-memory A/B tiles and barriers —
 * the classic register-hungry kernel. On the Fermi-class baseline its
 * occupancy is bounded by the register file (capacity limit), so it is a
 * member of the population Virtual Thread does *not* speed up.
 */

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

class Matmul : public Workload
{
  public:
    explicit Matmul(std::uint32_t scale) : n_(scale == 0 ? 32 : 96)
    {
        if (scale > 1)
            n_ = 96 + 32 * (scale - 1);
    }

    std::string name() const override { return "matmul"; }

    std::string
    description() const override
    {
        return "16x16-tiled dense matmul, shared-mem tiles + barriers";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::CapacityLimited;
    }

    Kernel
    buildKernel() const override
    {
        return assemble(R"(
.kernel matmul
.regs 34
.shared 2048
    ldp r0, 0            # A
    ldp r1, 1            # B
    ldp r2, 2            # C
    ldp r3, 3            # N
    s2r r4, ctaid.x
    s2r r5, ctaid.y
    s2r r6, tid.x
    s2r r7, tid.y
    movi r8, 16
    imad r9, r5, r8, r7  # row
    imad r10, r4, r8, r6 # col
    movi r11, 0          # acc = 0.0f
    movi r12, 0          # tile t
    shr r13, r3, 4       # numTiles
tloop:
    shl r14, r12, 4      # t*16
    iadd r15, r14, r6
    imad r16, r9, r3, r15
    shl r16, r16, 2
    iadd r16, r16, r0
    ldg r17, [r16]       # A[row][t*16+tx]
    imad r18, r7, r8, r6 # ty*16+tx
    shl r18, r18, 2
    sts [r18], r17
    iadd r19, r14, r7
    imad r20, r19, r3, r10
    shl r20, r20, 2
    iadd r20, r20, r1
    ldg r21, [r20]       # B[t*16+ty][col]
    sts [r18+1024], r21
    bar
    movi r22, 0          # k
kloop:
    imad r23, r7, r8, r22
    shl r23, r23, 2
    lds r24, [r23]       # As[ty][k]
    imad r25, r22, r8, r6
    shl r25, r25, 2
    lds r26, [r25+1024]  # Bs[k][tx]
    ffma r11, r24, r26, r11
    iadd r22, r22, 1
    isetp.lt r27, r22, r8
    bra r27, kloop
    bar
    iadd r12, r12, 1
    isetp.lt r28, r12, r13
    bra r28, tloop
    imad r29, r9, r3, r10
    shl r29, r29, 2
    iadd r29, r29, r2
    stg [r29], r11
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd04);
        std::vector<float> a(std::size_t(n_) * n_);
        std::vector<float> b(std::size_t(n_) * n_);
        for (auto &v : a)
            v = rng.nextFloat();
        for (auto &v : b)
            v = rng.nextFloat();
        aAddr_ = gmem.alloc(a.size() * 4);
        bAddr_ = gmem.alloc(b.size() * 4);
        cAddr_ = gmem.alloc(a.size() * 4);
        gmem.writeFloats(aAddr_, a);
        gmem.writeFloats(bAddr_, b);

        // Host reference with identical operation order (k ascending FMA).
        expected_.assign(std::size_t(n_) * n_, 0.0f);
        for (std::uint32_t r = 0; r < n_; ++r) {
            for (std::uint32_t c = 0; c < n_; ++c) {
                float acc = 0.0f;
                for (std::uint32_t k = 0; k < n_; ++k) {
                    acc = a[std::size_t(r) * n_ + k] *
                              b[std::size_t(k) * n_ + c] + acc;
                }
                expected_[std::size_t(r) * n_ + c] = acc;
            }
        }

        LaunchParams lp;
        lp.cta = Dim3(16, 16);
        lp.grid = Dim3(n_ / 16, n_ / 16);
        lp.params = {std::uint32_t(aAddr_), std::uint32_t(bAddr_),
                     std::uint32_t(cAddr_), n_};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readFloats(cAddr_, std::size_t(n_) * n_);
        for (std::size_t i = 0; i < got.size(); ++i)
            if (got[i] != expected_[i])
                return false;
        return true;
    }

  private:
    std::uint32_t n_;
    Addr aAddr_ = 0, bAddr_ = 0, cAddr_ = 0;
    std::vector<float> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeMatmul(std::uint32_t scale)
{
    return std::make_unique<Matmul>(scale);
}

} // namespace vtsim
