/**
 * @file
 * Minimal JSON value for the vtsimd wire protocol (one request or
 * reply per NDJSON line, src/service/protocol.*).
 *
 * Scope is deliberately small: parse and serialize the six JSON value
 * kinds with a recursion-depth cap, report malformed input by throwing
 * JsonError (a std::runtime_error — NOT FatalError: a bad request from
 * a client must never look like a simulator failure, the daemon turns
 * it into an error reply and keeps serving). Numbers are stored as
 * int64 when the literal is integral and round-trippable, double
 * otherwise — job ids and cycle counts survive exactly.
 */

#ifndef VTSIM_SERVICE_JSON_HH
#define VTSIM_SERVICE_JSON_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vtsim::service {

/** Malformed JSON text or a type-mismatched access. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &what)
        : std::runtime_error(what)
    {}
};

class Json
{
  public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    using Array = std::vector<Json>;
    /** std::map: deterministic key order when dumping. */
    using Object = std::map<std::string, Json>;

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(std::int64_t i) : type_(Type::Int), int_(i) {}
    Json(std::uint64_t u) : type_(Type::Int), int_(std::int64_t(u)) {}
    Json(int i) : type_(Type::Int), int_(i) {}
    Json(unsigned u) : type_(Type::Int), int_(std::int64_t(u)) {}
    Json(double d) : type_(Type::Double), double_(d) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Json(const char *s) : type_(Type::String), string_(s) {}
    Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
    Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

    /** Parse exactly one JSON document; trailing non-space throws. */
    static Json parse(std::string_view text);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isInt() const { return type_ == Type::Int; }
    bool isNumber() const
    { return type_ == Type::Int || type_ == Type::Double; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; throw JsonError on kind mismatch. */
    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member, or nullptr when absent (or not an object). */
    const Json *find(const std::string &key) const;

    /** Serialize on one line (NDJSON-safe: no raw newlines). */
    std::string dump() const;

  private:
    void dumpTo(std::string &out) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

} // namespace vtsim::service

#endif // VTSIM_SERVICE_JSON_HH
