/**
 * @file
 * Quickstart: build a GPU, assemble a kernel, run it on the baseline and
 * on the Virtual Thread machine, and compare.
 *
 * This is the 60-second tour of the public API:
 *   GpuConfig -> Gpu -> memory() -> assemble() -> launch() -> KernelStats.
 */

#include <cstdio>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "isa/assembler.hh"
#include "occupancy/occupancy.hh"
#include "workloads/workload.hh"

int
main()
try {
    using namespace vtsim;

    // A memory-latency-bound workload with small CTAs: the shape the
    // Virtual Thread architecture targets.
    auto workload = makeWorkload("bfs");
    const Kernel kernel = workload->buildKernel();

    // --- Baseline: a Fermi-class GPU ------------------------------------
    GpuConfig base_cfg = GpuConfig::fermiLike();
    Gpu baseline(base_cfg);
    LaunchParams lp = workload->prepare(baseline.memory());

    const OccupancyResult occ = computeOccupancy(base_cfg, kernel, lp);
    std::printf("kernel '%s': %u CTAs/SM (limited by %s), "
                "capacity alone would allow %u\n",
                kernel.name().c_str(), occ.ctasPerSm,
                toString(occ.limiter).c_str(), occ.ctasCapacityOnly);

    const KernelStats base = baseline.launch(kernel, lp);
    if (!workload->verify(baseline.memory()))
        VTSIM_FATAL("baseline results are wrong");
    std::printf("baseline      : %8llu cycles, IPC %.3f\n",
                (unsigned long long)base.cycles, base.ipc);

    // --- Virtual Thread: same machine, CTAs admitted to capacity --------
    GpuConfig vt_cfg = base_cfg;
    vt_cfg.vtEnabled = true;
    Gpu vt_gpu(vt_cfg);
    auto workload_vt = makeWorkload("bfs"); // fresh problem instance
    const Kernel kernel_vt = workload_vt->buildKernel();
    LaunchParams lp_vt = workload_vt->prepare(vt_gpu.memory());

    const KernelStats vt = vt_gpu.launch(kernel_vt, lp_vt);
    if (!workload_vt->verify(vt_gpu.memory()))
        VTSIM_FATAL("VT results are wrong");
    std::printf("virtual-thread: %8llu cycles, IPC %.3f "
                "(%llu swap-outs, %llu swap-ins)\n",
                (unsigned long long)vt.cycles, vt.ipc,
                (unsigned long long)vt.swapOuts,
                (unsigned long long)vt.swapIns);

    std::printf("speedup: %.2fx\n", double(base.cycles) / vt.cycles);
    return 0;
} catch (const vtsim::FatalError &e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
}
