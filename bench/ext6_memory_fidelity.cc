/**
 * @file
 * EXT-6 (methodology ablation): the memory-system fidelity choices
 * DESIGN.md's calibration notes call out, shown to be load-bearing.
 * Each row reruns a VT-winning benchmark with one fidelity knob
 * degraded: FCFS DRAM scheduling (window 1) and a 32-entry L1 MSHR
 * file. VT's apparent benefit shrinks or inverts under the degraded
 * models — the trap a lower-fidelity reproduction would fall into.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("EXT-6", "memory-fidelity ablation of VT's speedup");
    const char *subset[] = {"vecadd", "stencil", "histogram", "needle"};

    const GpuConfig faithful = GpuConfig::fermiLike();
    GpuConfig fcfs = faithful;
    fcfs.dramSchedWindow = 1;
    GpuConfig small_mshr = faithful;
    small_mshr.l1Mshrs = 32;
    const GpuConfig models[] = {faithful, fcfs, small_mshr};
    constexpr std::size_t stride = 2 * std::size(models);

    std::vector<RunSpec> specs;
    for (const char *name : subset) {
        for (const GpuConfig &model : models) {
            GpuConfig vt = model;
            vt.vtEnabled = true;
            specs.push_back({name, model, benchScale});
            specs.push_back({name, vt, benchScale});
        }
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s %10s %12s %12s\n", "benchmark", "faithful",
                "fcfs-dram", "32-mshr-l1");
    for (std::size_t w = 0; w < std::size(subset); ++w) {
        const auto speedup = [&](std::size_t model) {
            const RunResult &b = results[w * stride + 2 * model];
            const RunResult &v = results[w * stride + 2 * model + 1];
            return double(b.stats.cycles) / v.stats.cycles;
        };
        std::printf("%-14s %9.2fx %11.2fx %11.2fx\n", subset[w],
                    speedup(0), speedup(1), speedup(2));
    }
    std::printf("(each column compares VT to a baseline with the SAME "
                "memory model)\n");
    return 0;
}
