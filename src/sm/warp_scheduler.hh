/**
 * @file
 * Warp scheduling policies (LRR, GTO, two-level). A policy ranks the
 * warps that are issuable this cycle; it holds no warp state of its own
 * beyond the rotation/greed bookkeeping.
 */

#ifndef VTSIM_SM_WARP_SCHEDULER_HH
#define VTSIM_SM_WARP_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/types.hh"
#include "config/gpu_config.hh"
#include "sim/sim_component.hh"

namespace vtsim {

/**
 * A schedulable warp as the policy sees it. The key is unique and stable
 * for the lifetime of the warp's CTA residency; age orders warps oldest
 * first (CTA admission order, then warp index).
 */
struct WarpCandidate
{
    std::uint64_t key;  ///< Stable identity.
    std::uint64_t age;  ///< Lower = older.
};

class WarpScheduler : public SimComponent
{
  public:
    /**
     * Choose among @p candidates (nonempty, deterministic order).
     * @return Index into @p candidates.
     *
     * Contract relied on by the SM's incremental ready-warp sets: the
     * chosen *candidate* depends only on the multiset of (key, age)
     * pairs, never on positional order. Every policy here satisfies it
     * (keys are unique, comparisons are total), which is what lets the
     * ready lists hand candidates over in sorted-key order and still
     * reproduce the legacy full-scan pick bit for bit.
     */
    virtual std::size_t pick(const std::vector<WarpCandidate> &candidates)
        = 0;

    /** Factory for the configured policy. */
    static std::unique_ptr<WarpScheduler> create(SchedulerPolicy policy,
                                                 std::uint32_t active_set);
};

/** Loose round-robin: rotate fairly through issuable warps. */
class LrrScheduler : public WarpScheduler
{
  public:
    std::size_t pick(const std::vector<WarpCandidate> &candidates) override;

    void reset() override { lastKey_ = 0; }

    void
    save(Serializer &ser) const override
    {
        const std::size_t sec = ser.beginSection("wlrr");
        ser.put(lastKey_);
        ser.endSection(sec);
    }

    void
    restore(Deserializer &des) override
    {
        des.beginSection("wlrr");
        des.get(lastKey_);
        des.endSection();
    }

  private:
    std::uint64_t lastKey_ = 0;
};

/** Greedy-then-oldest: stay on the same warp until it stalls, then take
 *  the oldest ready warp. */
class GtoScheduler : public WarpScheduler
{
  public:
    std::size_t pick(const std::vector<WarpCandidate> &candidates) override;

    void reset() override { greedyKey_ = ~0ull; }

    void
    save(Serializer &ser) const override
    {
        const std::size_t sec = ser.beginSection("wgto");
        ser.put(greedyKey_);
        ser.endSection(sec);
    }

    void
    restore(Deserializer &des) override
    {
        des.beginSection("wgto");
        des.get(greedyKey_);
        des.endSection();
    }

  private:
    std::uint64_t greedyKey_ = ~0ull;
};

/** Two-level: a small active set scheduled LRR; stalled members are
 *  replaced from the pending pool oldest-first. */
class TwoLevelScheduler : public WarpScheduler
{
  public:
    explicit TwoLevelScheduler(std::uint32_t active_set_size)
        : activeSetSize_(active_set_size ? active_set_size : 1)
    {}

    std::size_t pick(const std::vector<WarpCandidate> &candidates) override;

    void
    reset() override
    {
        activeSet_.clear();
        lastKey_ = 0;
    }

    void
    save(Serializer &ser) const override
    {
        const std::size_t sec = ser.beginSection("w2lv");
        // std::set iterates sorted, so the stream is deterministic.
        std::vector<std::uint64_t> members(activeSet_.begin(),
                                           activeSet_.end());
        ser.putVec(members);
        ser.put(lastKey_);
        ser.endSection(sec);
    }

    void
    restore(Deserializer &des) override
    {
        des.beginSection("w2lv");
        std::vector<std::uint64_t> members;
        des.getVec(members);
        activeSet_.clear();
        activeSet_.insert(members.begin(), members.end());
        des.get(lastKey_);
        des.endSection();
    }

  private:
    std::uint32_t activeSetSize_;
    std::set<std::uint64_t> activeSet_;
    std::uint64_t lastKey_ = 0;
};

} // namespace vtsim

#endif // VTSIM_SM_WARP_SCHEDULER_HH
