/**
 * @file
 * The daemon's membership thread in a vtsim fabric: dials the
 * coordinator, registers this daemon (name, dial-back address, worker
 * count), then heartbeats its load (queue depth, running, parked) on a
 * fixed cadence so the coordinator can dispatch, steal and detect node
 * loss. Connection failures are retried with backoff forever — a
 * daemon outliving a coordinator restart simply re-registers.
 */

#ifndef VTSIM_FABRIC_NODE_AGENT_HH
#define VTSIM_FABRIC_NODE_AGENT_HH

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "fabric/transport.hh"

namespace vtsim::service {
class JobService;
}

namespace vtsim::fabric {

struct NodeAgentConfig
{
    /** Fleet-unique daemon name (vtsimd --node). */
    std::string node;
    /** Where the coordinator listens (vtsimd --coordinator). */
    HostPort coordinator;
    /** Where the coordinator dials this daemon back — the daemon's
     *  TCP listener as reachable from the coordinator's host
     *  (vtsimd --advertise; defaults to 127.0.0.1:<listen-tcp port>). */
    HostPort advertise;
    /** Fleet bearer token (shared by daemons and coordinator). */
    std::string token;
    int heartbeatMs = 500;
};

class NodeAgent
{
  public:
    NodeAgent(service::JobService &service, NodeAgentConfig config);

    /** Joins the heartbeat thread (as stop()). */
    ~NodeAgent();

    /** Spawn the register/heartbeat thread. */
    void start();

    /** Stop heartbeating and join. Idempotent. */
    void stop();

  private:
    void run();
    /** One connect + register + heartbeat session; returns on error
     *  (caller reconnects) or stop. */
    void session();
    /** Interruptible sleep; false when stop() was requested. */
    bool sleepFor(int ms);

    service::JobService &service_;
    NodeAgentConfig config_;

    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace vtsim::fabric

#endif // VTSIM_FABRIC_NODE_AGENT_HH
