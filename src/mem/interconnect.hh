/**
 * @file
 * SM <-> memory-partition interconnect: a crossbar with per-endpoint
 * output queues. Requests queue at their destination partition's port and
 * responses at their source SM's port; each port delivers a bounded
 * number of flits per cycle after a fixed traversal latency. Contention
 * is therefore per-port, as in the Fermi crossbar, not chip-global.
 */

#ifndef VTSIM_MEM_INTERCONNECT_HH
#define VTSIM_MEM_INTERCONNECT_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "mem/mem_request.hh"
#include "sim/sim_component.hh"
#include "stats/stats.hh"

namespace vtsim {

/** Interconnect parameters. */
struct NocParams
{
    std::uint32_t latency = 12;      ///< Traversal cycles, each way.
    std::uint32_t flitsPerCycle = 2; ///< Deliveries per port per cycle.
    std::uint32_t numSms = 1;
    std::uint32_t numPartitions = 1;
    /** Skip provably eventless tick()s (event-horizon fast-forward). */
    bool lazyTick = true;
};

class Interconnect : public SimComponent
{
  public:
    using Deliver = std::function<void(const MemRequest &, Cycle)>;
    using Router = std::function<std::uint32_t(Addr)>;

    explicit Interconnect(const NocParams &params);

    /** Wire the endpoints (Gpu does this once). */
    void setRequestSink(Deliver d) { toMem_ = std::move(d); }
    void setResponseSink(Deliver d) { toSm_ = std::move(d); }
    /** Address -> partition index mapping for request routing. */
    void setRouter(Router r) { router_ = std::move(r); }

    /** Enqueue an SM -> memory request at cycle @p now. */
    void sendRequest(const MemRequest &req, Cycle now);

    /** Enqueue a memory -> SM response at cycle @p now. */
    void sendResponse(const MemRequest &req, Cycle now);

    /** Deliver everything whose traversal completed by @p now, respecting
     *  per-port bandwidth. */
    void tick(Cycle now) override;

    bool idle() const;

    /**
     * Earliest cycle >= @p now at which tick() might deliver a flit
     * (event-horizon fast-forward protocol; see docs/ARCHITECTURE.md).
     * neverCycle when every queue is empty.
     */
    Cycle nextEventCycle(Cycle now) override { return computeNextEvent(now); }

    // SimComponent lifecycle. No settleTo: queue heads carry absolute
    // ready cycles and no per-cycle accounting is deferred.
    void reset() override;
    void save(Serializer &ser) const override;
    void restore(Deserializer &des) override;

    StatGroup &stats() { return stats_; }
    std::uint64_t requestFlits() const { return reqFlits_.value(); }
    std::uint64_t responseFlits() const { return respFlits_.value(); }

  private:
    struct InFlight
    {
        MemRequest req;
        Cycle readyAt;
    };

    void drain(std::deque<InFlight> &queue, const Deliver &deliver,
               Cycle now);
    Cycle computeNextEvent(Cycle now) const;
    static void saveQueues(Serializer &ser,
                           const std::vector<std::deque<InFlight>> &queues);
    static void restoreQueues(Deserializer &des,
                              std::vector<std::deque<InFlight>> &queues);

    NocParams params_;
    /** Lazy-tick horizon: while now < ffHorizon_ and nothing is sent,
     *  tick() cannot deliver a flit (all queue heads mature later) and
     *  returns immediately. No deferred accounting is needed: the
     *  bandwidth-stall counter only advances when a head is ready, and
     *  a ready head pins the horizon to the present. */
    Cycle ffHorizon_ = 0;
    /** One request queue per destination partition. */
    std::vector<std::deque<InFlight>> reqQueues_;
    /** One response queue per destination SM. */
    std::vector<std::deque<InFlight>> respQueues_;
    Deliver toMem_;
    Deliver toSm_;
    Router router_;

    StatGroup stats_;
    Counter reqFlits_;
    Counter respFlits_;
    Counter stallCycles_; ///< Port-cycles a ready flit waited on bw.
};

} // namespace vtsim

#endif // VTSIM_MEM_INTERCONNECT_HH
