#include "gpu/shard_pool.hh"

#include "common/log.hh"

namespace vtsim {

ShardPool::ShardPool(unsigned workers) : workers_(workers)
{
    VTSIM_ASSERT(workers >= 2, "ShardPool needs at least two workers");
    threads_.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ShardPool::~ShardPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ShardPool::runEpoch(const std::function<void(unsigned)> &fn)
{
    fn_ = &fn;
    remaining_.store(workers_ - 1, std::memory_order_release);
    {
        // The lock pairs with the workers' cv_ wait so a worker that
        // just checked the generation cannot miss the notify.
        std::lock_guard<std::mutex> lock(mu_);
        generation_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();

    fn(0);

    for (int i = 0;
         i < spinIters && remaining_.load(std::memory_order_acquire) != 0;
         ++i) {
    }
    if (remaining_.load(std::memory_order_acquire) != 0) {
        std::unique_lock<std::mutex> lock(doneMu_);
        doneCv_.wait(lock, [this] {
            return remaining_.load(std::memory_order_acquire) == 0;
        });
    }
}

void
ShardPool::workerLoop(unsigned w)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t gen = seen;
        for (int i = 0; i < spinIters; ++i) {
            gen = generation_.load(std::memory_order_acquire);
            if (gen != seen)
                break;
        }
        if (gen == seen) {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this, seen] {
                return stop_ ||
                       generation_.load(std::memory_order_acquire) != seen;
            });
            if (stop_)
                return;
            gen = generation_.load(std::memory_order_acquire);
        }
        seen = gen;
        (*fn_)(w);
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Take the lock so the driver is either past its check or
            // parked in wait — never between (no lost wakeup).
            std::lock_guard<std::mutex> lock(doneMu_);
            doneCv_.notify_one();
        }
    }
}

} // namespace vtsim
