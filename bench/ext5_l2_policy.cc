/**
 * @file
 * EXT-5 (extension study): L2 write policy. The Fermi L2 is write-back;
 * the simulator's default is write-through/no-allocate. This study
 * checks that the Virtual Thread conclusion is insensitive to that
 * modelling choice — VT's gain should be essentially unchanged under a
 * write-back L2.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("EXT-5", "VT speedup under both L2 write policies");
    const char *subset[] = {"vecadd", "saxpy", "reduce", "stencil",
                            "histogram", "needle", "mummer"};

    std::vector<RunSpec> specs;
    for (const char *name : subset) {
        for (bool wb : {false, true}) {
            GpuConfig base = GpuConfig::fermiLike();
            base.l2WriteBack = wb;
            GpuConfig vt = base;
            vt.vtEnabled = true;
            specs.push_back({name, base, benchScale});
            specs.push_back({name, vt, benchScale});
        }
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s %14s %14s\n", "benchmark", "write-through",
                "write-back");
    for (std::size_t w = 0; w < std::size(subset); ++w) {
        std::printf("%-14s", subset[w]);
        for (std::size_t p = 0; p < 2; ++p) {
            const RunResult &b = results[4 * w + 2 * p];
            const RunResult &v = results[4 * w + 2 * p + 1];
            std::printf("        %5.2fx ",
                        double(b.stats.cycles) / v.stats.cycles);
        }
        std::printf("\n");
    }
    std::printf("(each column's baseline uses the same L2 policy as its "
                "VT machine)\n");
    return 0;
}
