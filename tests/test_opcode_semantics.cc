/**
 * @file
 * Property sweep of ALU opcode semantics: every binary integer/float
 * operation checked against a host reference over hundreds of random
 * operand pairs, including the wrap/shift/sign corners.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <functional>

#include "common/rng.hh"
#include "func/exec_context.hh"
#include "func/global_memory.hh"

namespace vtsim {
namespace {

struct OpCase
{
    const char *name;
    Opcode op;
    std::function<std::uint32_t(std::uint32_t, std::uint32_t)> ref;
};

const OpCase kIntCases[] = {
    {"iadd", Opcode::IADD,
     [](std::uint32_t a, std::uint32_t b) { return a + b; }},
    {"isub", Opcode::ISUB,
     [](std::uint32_t a, std::uint32_t b) { return a - b; }},
    {"imul", Opcode::IMUL,
     [](std::uint32_t a, std::uint32_t b) { return a * b; }},
    {"and", Opcode::AND,
     [](std::uint32_t a, std::uint32_t b) { return a & b; }},
    {"or", Opcode::OR,
     [](std::uint32_t a, std::uint32_t b) { return a | b; }},
    {"xor", Opcode::XOR,
     [](std::uint32_t a, std::uint32_t b) { return a ^ b; }},
    {"shl", Opcode::SHL,
     [](std::uint32_t a, std::uint32_t b) { return a << (b & 31); }},
    {"shr", Opcode::SHR,
     [](std::uint32_t a, std::uint32_t b) { return a >> (b & 31); }},
    {"imin", Opcode::IMIN,
     [](std::uint32_t a, std::uint32_t b) {
         return static_cast<std::uint32_t>(
             std::min(static_cast<std::int32_t>(a),
                      static_cast<std::int32_t>(b)));
     }},
    {"imax", Opcode::IMAX,
     [](std::uint32_t a, std::uint32_t b) {
         return static_cast<std::uint32_t>(
             std::max(static_cast<std::int32_t>(a),
                      static_cast<std::int32_t>(b)));
     }},
    {"idiv", Opcode::IDIV,
     [](std::uint32_t a, std::uint32_t b) {
         const auto sa = static_cast<std::int32_t>(a);
         const auto sb = static_cast<std::int32_t>(b);
         return sb ? static_cast<std::uint32_t>(sa / sb) : 0u;
     }},
    {"irem", Opcode::IREM,
     [](std::uint32_t a, std::uint32_t b) {
         const auto sa = static_cast<std::int32_t>(a);
         const auto sb = static_cast<std::int32_t>(b);
         return sb ? static_cast<std::uint32_t>(sa % sb) : 0u;
     }},
};

const OpCase kFloatCases[] = {
    {"fadd", Opcode::FADD,
     [](std::uint32_t a, std::uint32_t b) {
         return std::bit_cast<std::uint32_t>(std::bit_cast<float>(a) +
                                             std::bit_cast<float>(b));
     }},
    {"fsub", Opcode::FSUB,
     [](std::uint32_t a, std::uint32_t b) {
         return std::bit_cast<std::uint32_t>(std::bit_cast<float>(a) -
                                             std::bit_cast<float>(b));
     }},
    {"fmul", Opcode::FMUL,
     [](std::uint32_t a, std::uint32_t b) {
         return std::bit_cast<std::uint32_t>(std::bit_cast<float>(a) *
                                             std::bit_cast<float>(b));
     }},
    {"fmin", Opcode::FMIN,
     [](std::uint32_t a, std::uint32_t b) {
         return std::bit_cast<std::uint32_t>(
             std::fmin(std::bit_cast<float>(a), std::bit_cast<float>(b)));
     }},
    {"fmax", Opcode::FMAX,
     [](std::uint32_t a, std::uint32_t b) {
         return std::bit_cast<std::uint32_t>(
             std::fmax(std::bit_cast<float>(a), std::bit_cast<float>(b)));
     }},
};

class OpSemantics : public ::testing::Test
{
  protected:
    OpSemantics()
    {
        launch_.grid = Dim3(1);
        launch_.cta = Dim3(32);
        cta_.init(0, Dim3(0, 0, 0), 32, 4, 0);
    }

    void
    checkCase(const OpCase &c, std::uint32_t a, std::uint32_t b)
    {
        for (std::uint32_t lane = 0; lane < warpSize; ++lane) {
            cta_.writeReg(lane, 0, a);
            cta_.writeReg(lane, 1, b);
        }
        Instruction inst;
        inst.op = c.op;
        inst.dst = 2;
        inst.src[0] = 0;
        inst.src[1] = 1;
        execute(inst, 0, ActiveMask::all(), cta_, gmem_, launch_);
        ASSERT_EQ(cta_.readReg(0, 2), c.ref(a, b))
            << c.name << "(" << a << ", " << b << ")";
        ASSERT_EQ(cta_.readReg(31, 2), c.ref(a, b)) << c.name;
    }

    GlobalMemory gmem_;
    CtaFuncState cta_;
    LaunchParams launch_;
};

TEST_F(OpSemantics, IntegerOpsMatchReferenceOnRandomPairs)
{
    Rng rng(0x5eed);
    for (const auto &c : kIntCases) {
        for (int i = 0; i < 300; ++i) {
            checkCase(c, static_cast<std::uint32_t>(rng.next()),
                      static_cast<std::uint32_t>(rng.next()));
        }
    }
}

TEST_F(OpSemantics, IntegerOpsCornerValues)
{
    const std::uint32_t corners[] = {0u, 1u, 0x7fffffffu, 0x80000000u,
                                     0xffffffffu, 31u, 32u, 33u};
    for (const auto &c : kIntCases)
        for (std::uint32_t a : corners)
            for (std::uint32_t b : corners) {
                // INT_MIN / -1 is UB in C++ but defined (wrapping) in
                // the simulator, matching GPU semantics; the host
                // reference cannot express it, so check it explicitly.
                if ((c.op == Opcode::IDIV || c.op == Opcode::IREM) &&
                    a == 0x80000000u && b == 0xffffffffu) {
                    for (std::uint32_t lane = 0; lane < warpSize; ++lane) {
                        cta_.writeReg(lane, 0, a);
                        cta_.writeReg(lane, 1, b);
                    }
                    Instruction inst;
                    inst.op = c.op;
                    inst.dst = 2;
                    inst.src[0] = 0;
                    inst.src[1] = 1;
                    execute(inst, 0, ActiveMask::all(), cta_, gmem_,
                            launch_);
                    ASSERT_EQ(cta_.readReg(0, 2),
                              c.op == Opcode::IDIV ? 0x80000000u : 0u);
                    continue;
                }
                checkCase(c, a, b);
            }
}

TEST_F(OpSemantics, FloatOpsMatchReferenceOnRandomPairs)
{
    Rng rng(0xf10a7);
    for (const auto &c : kFloatCases) {
        for (int i = 0; i < 300; ++i) {
            const float fa = (rng.nextFloat() - 0.5f) * 2000.0f;
            const float fb = (rng.nextFloat() - 0.5f) * 2000.0f;
            checkCase(c, std::bit_cast<std::uint32_t>(fa),
                      std::bit_cast<std::uint32_t>(fb));
        }
    }
}

TEST_F(OpSemantics, MadAndFfmaMatchReference)
{
    Rng rng(0xabc);
    for (int i = 0; i < 300; ++i) {
        const std::uint32_t a = static_cast<std::uint32_t>(rng.next());
        const std::uint32_t b = static_cast<std::uint32_t>(rng.next());
        const std::uint32_t c = static_cast<std::uint32_t>(rng.next());
        for (std::uint32_t lane = 0; lane < warpSize; ++lane) {
            cta_.writeReg(lane, 0, a);
            cta_.writeReg(lane, 1, b);
            cta_.writeReg(lane, 2, c);
        }
        Instruction inst;
        inst.op = Opcode::IMAD;
        inst.dst = 3;
        inst.src[0] = 0;
        inst.src[1] = 1;
        inst.src[2] = 2;
        execute(inst, 0, ActiveMask::all(), cta_, gmem_, launch_);
        ASSERT_EQ(cta_.readReg(5, 3), a * b + c);
    }
}

TEST_F(OpSemantics, ComparesMatchSignedReference)
{
    Rng rng(0xc0de);
    const CmpOp cmps[] = {CmpOp::EQ, CmpOp::NE, CmpOp::LT,
                          CmpOp::LE, CmpOp::GT, CmpOp::GE};
    for (int i = 0; i < 500; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next());
        const auto b = rng.nextBool() ? a
                                      : static_cast<std::uint32_t>(
                                            rng.next());
        const auto sa = static_cast<std::int32_t>(a);
        const auto sb = static_cast<std::int32_t>(b);
        const bool refs[] = {sa == sb, sa != sb, sa < sb,
                             sa <= sb, sa > sb, sa >= sb};
        for (int k = 0; k < 6; ++k) {
            for (std::uint32_t lane = 0; lane < warpSize; ++lane) {
                cta_.writeReg(lane, 0, a);
                cta_.writeReg(lane, 1, b);
            }
            Instruction inst;
            inst.op = Opcode::ISETP;
            inst.cmp = cmps[k];
            inst.dst = 2;
            inst.src[0] = 0;
            inst.src[1] = 1;
            execute(inst, 0, ActiveMask::all(), cta_, gmem_, launch_);
            ASSERT_EQ(cta_.readReg(0, 2), refs[k] ? 1u : 0u)
                << "cmp " << k << " a=" << sa << " b=" << sb;
        }
    }
}

} // namespace
} // namespace vtsim
