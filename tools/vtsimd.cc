/**
 * @file
 * vtsimd — the simulation-job service daemon. Binds a Unix-domain
 * socket, accepts NDJSON job requests (src/service/protocol.hh) and
 * schedules them onto a preemptive worker pool (src/service/service.hh).
 *
 * Usage:
 *   vtsimd [--socket PATH] [--workers N] [--queue-limit N]
 *          [--preempt-every CYCLES] [--spool DIR] [--stats-json PATH]
 *          [--max-sim-threads N]
 *
 *   --socket PATH         listen here (default ./vtsimd.sock)
 *   --workers N           concurrent simulations (default 2)
 *   --queue-limit N       admission bound; beyond it submits get
 *                         rejected:queue_full (default 64)
 *   --preempt-every N     default checkpoint/preemption cadence in
 *                         cycles for jobs that don't set their own;
 *                         0 disables preemption (default 25000)
 *   --spool DIR           parked checkpoint images (default
 *                         ./vtsimd-spool)
 *   --stats-json PATH     on shutdown, write completed runs plus the
 *                         service telemetry as vtsim-stats-v1 JSON
 *   --max-sim-threads N   largest per-job "sim_threads" shard request
 *                         admitted; bigger asks are rejected at submit
 *                         (default 4)
 *
 * The daemon exits after a client's "shutdown" op (draining every
 * admitted job first) or on SIGINT/SIGTERM.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "service/daemon.hh"
#include "service/service.hh"
#include "service/stats_json.hh"

namespace {

vtsim::service::Daemon *g_daemon = nullptr;

void
onSignal(int)
{
    // requestStop only touches an atomic and shutdown(2) — both
    // async-signal-safe.
    if (g_daemon)
        g_daemon->requestStop();
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: vtsimd [--socket PATH] [--workers N] "
                 "[--queue-limit N]\n"
                 "              [--preempt-every CYCLES] [--spool DIR] "
                 "[--stats-json PATH]\n"
                 "              [--max-sim-threads N]\n");
    std::exit(2);
}

unsigned long long
parseCount(const char *text, const char *what)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "vtsimd: invalid %s '%s'\n", what, text);
        std::exit(2);
    }
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vtsim::service;

    std::string socket_path = "vtsimd.sock";
    std::string stats_json_path;
    ServiceConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--socket")
            socket_path = value();
        else if (arg == "--workers")
            config.workers = unsigned(parseCount(value(), "--workers"));
        else if (arg == "--queue-limit")
            config.queueLimit =
                std::size_t(parseCount(value(), "--queue-limit"));
        else if (arg == "--preempt-every")
            config.preemptEvery = parseCount(value(), "--preempt-every");
        else if (arg == "--spool")
            config.spoolDir = value();
        else if (arg == "--max-sim-threads")
            config.maxSimThreads =
                unsigned(parseCount(value(), "--max-sim-threads"));
        else if (arg == "--stats-json")
            stats_json_path = value();
        else
            usage();
    }
    if (config.workers < 1) {
        std::fprintf(stderr, "vtsimd: --workers must be >= 1\n");
        return 2;
    }

    try {
        JobService service(config);
        Daemon daemon(service, socket_path);
        daemon.start();
        g_daemon = &daemon;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::signal(SIGPIPE, SIG_IGN);

        std::fprintf(stderr,
                     "[vtsimd] listening on %s (%u workers, queue "
                     "limit %zu, preempt every %llu cycles)\n",
                     socket_path.c_str(), config.workers,
                     config.queueLimit,
                     (unsigned long long)config.preemptEvery);
        daemon.serve();

        std::fprintf(stderr, "[vtsimd] draining...\n");
        service.shutdown();
        g_daemon = nullptr;

        if (!stats_json_path.empty()) {
            std::ofstream os(stats_json_path);
            if (!os) {
                std::fprintf(stderr,
                             "vtsimd: cannot open stats-json file "
                             "'%s'\n",
                             stats_json_path.c_str());
                return 1;
            }
            const Json section = service.statsJsonSection();
            writeStatsJson(os, service.completedRuns(), &section);
            std::fprintf(stderr, "[vtsimd] wrote %s\n",
                         stats_json_path.c_str());
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "vtsimd: %s\n", e.what());
        return 1;
    }
    return 0;
}
