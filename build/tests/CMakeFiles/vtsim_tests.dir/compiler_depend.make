# Empty compiler generated dependencies file for vtsim_tests.
# This may be replaced when dependencies are built.
