#include "core/energy_model.hh"

#include <iomanip>

namespace vtsim {

EnergyBreakdown
estimateEnergy(const KernelStats &stats, const GpuConfig &config,
               std::uint32_t swap_bytes_per_cta,
               const EnergyParams &params)
{
    EnergyBreakdown e;
    e.core = params.warpInstruction *
             static_cast<double>(stats.warpInstructions);
    e.l1 = params.l1Access *
           static_cast<double>(stats.l1Hits + stats.l1Misses);
    e.l2 = params.l2Access *
           static_cast<double>(stats.l2Hits + stats.l2Misses);
    e.dram = params.dramPerByte * static_cast<double>(stats.dramBytes);
    // Responses dominate NoC traffic (one full line back per L1 miss).
    e.noc = params.nocPerResponse *
            static_cast<double>(stats.l1Misses + stats.l2Misses);
    // A swap saves one context and restores another.
    e.vtSwap = params.vtSwapPerByte * 2.0 * swap_bytes_per_cta *
               static_cast<double>(stats.swapOuts);
    e.staticEnergy = params.staticPerSmCycle *
                     static_cast<double>(stats.cycles) * config.numSms;
    return e;
}

void
printEnergy(std::ostream &os, const EnergyBreakdown &energy)
{
    auto row = [&os](const char *key, double pj) {
        os << "  " << std::left << std::setw(10) << key << std::fixed
           << std::setprecision(2) << pj / 1e6 << " uJ\n";
    };
    row("core", energy.core);
    row("l1", energy.l1);
    row("l2", energy.l2);
    row("dram", energy.dram);
    row("noc", energy.noc);
    row("vt-swap", energy.vtSwap);
    row("static", energy.staticEnergy);
    row("TOTAL", energy.total());
}

} // namespace vtsim
