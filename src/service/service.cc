#include "service/service.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "common/logger.hh"
#include "config/sim_mode.hh"
#include "service/protocol.hh"
#include "telemetry/prometheus.hh"
#include "workloads/workload.hh"

namespace vtsim::service {

namespace {

bool
terminalState(JobState s)
{
    return s == JobState::Done || s == JobState::Failed ||
           s == JobState::Cancelled || s == JobState::Migrated;
}

/** Best-effort removal of a job's parked image. */
void
dropSpoolFile(JobRecord &job)
{
    if (job.checkpointFile.empty())
        return;
    std::error_code ec;
    std::filesystem::remove(job.checkpointFile, ec);
    job.checkpointFile.clear();
}

std::vector<std::uint8_t>
loadImage(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        throw std::runtime_error("cannot open parked checkpoint '" +
                                 path + "'");
    }
    std::vector<std::uint8_t> image(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    if (!is.good() && !is.eof())
        throw std::runtime_error("short read from '" + path + "'");
    return image;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Worker-track process and job-track process ids of the job trace. */
constexpr std::uint32_t kTraceWorkersPid = 0;
constexpr std::uint32_t kTraceJobsPid = 1;

} // namespace

JobService::JobService(ServiceConfig config)
    : config_(std::move(config)),
      queue_(config_.queueLimit),
      started_(std::chrono::steady_clock::now())
{
    if (config_.workers < 1)
        config_.workers = 1;
    running_.resize(config_.workers);

    statsGroup_.addCounter("jobs_submitted", &submitted_,
                           "jobs admitted into the queue");
    statsGroup_.addCounter("jobs_completed", &completed_,
                           "jobs finished with verified results");
    statsGroup_.addCounter("jobs_failed", &failed_,
                           "jobs that exhausted their retry");
    statsGroup_.addCounter("jobs_rejected_full", &rejectedFull_,
                           "submissions rejected by admission control");
    statsGroup_.addCounter("jobs_cancelled", &cancelled_,
                           "jobs cancelled before completion");
    statsGroup_.addCounter("preemptions", &preemptions_,
                           "jobs parked at a checkpoint boundary");
    statsGroup_.addCounter("retries", &retries_,
                           "failed attempts retried from a checkpoint "
                           "or from scratch");
    statsGroup_.addCounter("jobs_migrated_out", &migratedOut_,
                           "jobs yanked for execution on another "
                           "daemon");
    statsGroup_.addCounter("jobs_migrated_in", &migratedIn_,
                           "jobs admitted with a shipped checkpoint "
                           "image to resume from");
    statsGroup_.addValue("queue_depth", &queueDepth_,
                         "jobs waiting for a worker right now");
    statsGroup_.addValue("max_queue_depth", &maxQueueDepth_,
                         "deepest the queue has been");
    statsGroup_.addValue("running_jobs", &runningJobs_,
                         "jobs on a worker right now");
    statsGroup_.addValue("parked_jobs", &parkedJobs_,
                         "preempted jobs with state spooled to disk");
    statsGroup_.addScalar("wait_seconds", &waitSeconds_,
                          "admission-to-first-start latency per job");
    statsGroup_.addScalar("job_kcycles_per_sec", &jobKcyclesPerSec_,
                          "simulation rate per completed job");
    statsGroup_.addScalar("queue_wait_seconds", &queueWaitSeconds_,
                          "queue wait per start or resume");
    statsGroup_.addScalar("run_seconds", &runSliceSeconds_,
                          "worker-occupancy per run slice");
    statsGroup_.addScalar("preempt_to_resume_seconds",
                          &preemptResumeSeconds_,
                          "park-to-resume latency per preemption");
    statsGroup_.addScalar("checkpoint_write_seconds",
                          &checkpointWriteSeconds_,
                          "serialize-and-spool time per parked image");
    statsGroup_.addHistogram("queue_wait_seconds_hist", &queueWaitHist_,
                             "queue-wait distribution (50 ms buckets)");
    statsGroup_.addHistogram("run_seconds_hist", &runSliceHist_,
                             "run-slice distribution (100 ms buckets)");
    statsGroup_.addHistogram("preempt_to_resume_seconds_hist",
                             &preemptResumeHist_,
                             "park-to-resume distribution (50 ms "
                             "buckets)");
    statsGroup_.addHistogram("checkpoint_write_seconds_hist",
                             &checkpointWriteHist_,
                             "checkpoint-write distribution (5 ms "
                             "buckets)");
    registry_.addGroup(statsGroup_);

    if (!config_.eventLogPath.empty()) {
        evlog_ = std::make_unique<EventLog>(config_.eventLogPath);
        evlog_->emit(
            "service_start",
            {{"workers", Json(unsigned(config_.workers))},
             {"queue_limit", Json(std::uint64_t(config_.queueLimit))},
             {"preempt_every",
              Json(std::uint64_t(config_.preemptEvery))}});
    }
    if (!config_.jobTracePath.empty()) {
        jobTrace_ = std::make_unique<telemetry::TraceJsonWriter>(
            config_.jobTracePath);
        jobTrace_->processName(kTraceWorkersPid, "vtsimd workers");
        jobTrace_->processName(kTraceJobsPid, "vtsimd jobs");
        for (unsigned w = 0; w < config_.workers; ++w) {
            jobTrace_->threadName(kTraceWorkersPid, w,
                                  "worker " + std::to_string(w));
        }
    }

    pool_ = std::make_unique<WorkerPool>(
        config_.workers,
        [this](WorkerPool::Task &out, unsigned worker) {
            return nextTask(out, worker);
        });
}

JobService::~JobService()
{
    shutdown();
}

void
JobService::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!shuttingDown_ && evlog_)
            evlog_->emit("drain");
        shuttingDown_ = true;
        workCv_.notify_all();
    }
    // call_once blocks concurrent callers until the drain completes,
    // so shutdown() is safe from the daemon's connection threads and
    // the destructor at once.
    std::call_once(shutdownOnce_, [this] {
        pool_->join();
        if (evlog_)
            evlog_->emit("service_stop");
        std::lock_guard<std::mutex> lk(traceMu_);
        if (jobTrace_)
            jobTrace_->close();
    });
    std::lock_guard<std::mutex> lk(mu_);
    joined_ = true;
}

JobService::SubmitOutcome
JobService::submit(const JobSpec &spec, Priority priority)
{
    SubmitOutcome out;
    // The submit event precedes admission: rejected submissions still
    // appear in the log, with the reject line's parent pointing here.
    std::uint64_t submit_seq = 0;
    if (evlog_) {
        submit_seq = evlog_->emit(
            "submit", {{"workload", Json(spec.workload)},
                       {"scale", Json(spec.scale)},
                       {"priority", Json(toString(priority))}});
    }
    const auto reject = [&](const std::string &reason) {
        if (evlog_) {
            evlog_->emit("reject", {{"parent", Json(submit_seq)},
                                    {"reason", Json(reason)}});
        }
    };
    if (spec.workload.empty()) {
        out.error = "workload must not be empty";
        reject(out.error);
        return out;
    }
    if (spec.gridWorkloads().size() > maxGrids) {
        out.error = "a job carries at most " + std::to_string(maxGrids) +
                    " kernels";
        reject(out.error);
        return out;
    }
    try {
        // Scale-0 probe: reject unknown workload names at admission,
        // not minutes later on a worker.
        for (const std::string &name : spec.gridWorkloads())
            makeWorkload(name, 0);
    } catch (const std::exception &e) {
        out.error = e.what();
        reject(out.error);
        return out;
    }
    {
        // Execution-mode matrix (config/sim_mode.hh): record vs co-run,
        // preempt without VT, ... — one shared error path.
        SimModeSpec mode;
        mode.recordTrace = !spec.recordTrace.empty();
        mode.checkpointEvery = spec.checkpointEvery;
        mode.numGrids = spec.gridWorkloads().size();
        mode.preemptPolicy = spec.sharePolicy == SharePolicy::Preempt;
        mode.vtEnabled = spec.config.vtEnabled;
        const std::string mode_error = validateSimMode(mode);
        if (!mode_error.empty()) {
            out.error = mode_error;
            reject(out.error);
            return out;
        }
    }
    if (spec.simThreads > config_.maxSimThreads) {
        out.error = "sim_threads " + std::to_string(spec.simThreads) +
                    " exceeds this service's limit of " +
                    std::to_string(config_.maxSimThreads);
        reject(out.error);
        return out;
    }
    if (!spec.resumeFrom.empty()) {
        if (!spec.recordTrace.empty()) {
            // A restore point is mid-run; a trace recording is not.
            out.error = "resume_xfer does not compose with "
                        "record_trace";
            reject(out.error);
            return out;
        }
        std::error_code ec;
        const auto size =
            std::filesystem::file_size(spec.resumeFrom, ec);
        if (ec || size == 0) {
            out.error = "resume image '" + spec.resumeFrom +
                        "' is missing or empty";
            reject(out.error);
            return out;
        }
    }

    std::lock_guard<std::mutex> lk(mu_);
    if (shuttingDown_) {
        out.rejected = "shutting_down";
        reject(out.rejected);
        return out;
    }
    auto record = std::make_unique<JobRecord>();
    record->id = nextId_;
    record->seq = nextSeq_;
    record->priority = priority;
    record->spec = spec;
    record->submitted = std::chrono::steady_clock::now();
    record->lastQueuedAt = record->submitted;
    if (!queue_.admit(record.get())) {
        ++rejectedFull_;
        out.rejected = "queue_full";
        reject(out.rejected);
        return out;
    }
    ++nextId_;
    ++nextSeq_;
    ++submitted_;
    out.id = record->id;
    JobRecord &job = *record;
    jobs_.emplace(out.id, std::move(record));
    job.lastEventSeq = submit_seq;
    Json::Object admit_fields{
        {"workload", Json(job.spec.workload)},
        {"scale", Json(job.spec.scale)},
        {"priority", Json(toString(job.priority))}};
    if (!job.spec.resumeFrom.empty()) {
        // Migration landing: the first run slice restores this image
        // instead of starting from scratch.
        job.checkpointFile = job.spec.resumeFrom;
        ++migratedIn_;
        admit_fields["migrated_in"] = Json(true);
    }
    eventLocked(job, "admit", std::move(admit_fields));
    traceJobThread(job);
    traceJobInstant(job.id, "submit");
    traceJobBegin(job.id, "queued");
    noteQueueDepthLocked();
    maybePreempt(priority);
    workCv_.notify_one();
    return out;
}

void
JobService::maybePreempt(Priority priority)
{
    if (runningJobs_ < running_.size())
        return; // A worker is free (or about to pull the new job).
    RunningSlot *victim = nullptr;
    for (auto &slot : running_) {
        if (!slot.job || slot.preemptSignalled)
            continue;
        if (slot.job->priority >= priority)
            continue;
        const Cycle cadence =
            !slot.job->spec.recordTrace.empty()
                ? 0
                : slot.job->spec.checkpointEvery
                      ? slot.job->spec.checkpointEvery
                      : config_.preemptEvery;
        if (cadence == 0)
            continue; // Opted out of preemption.
        if (!victim || slot.job->priority < victim->job->priority ||
            (slot.job->priority == victim->job->priority &&
             slot.job->seq > victim->job->seq)) {
            victim = &slot; // Weakest first; youngest breaks ties.
        }
    }
    if (!victim)
        return;
    victim->preemptSignalled = true;
    eventLocked(*victim->job, "preempt",
                {{"by_priority", Json(toString(priority))}});
    traceJobInstant(victim->job->id, "preempt");
    // The Gpu appears in the slot once the worker has acquired its
    // arena; before that, runJob sees preemptSignalled and arms the
    // request itself.
    if (victim->gpu)
        victim->gpu->requestPreempt();
}

bool
JobService::nextTask(WorkerPool::Task &out, unsigned worker)
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        workCv_.wait(lk,
                     [this] { return shuttingDown_ || !queue_.empty(); });
        JobRecord *job = queue_.pop();
        if (job) {
            const bool was_parked = job->state == JobState::Parked;
            if (was_parked)
                --parkedJobs_;
            const double wait = secondsSince(job->lastQueuedAt);
            queueWaitSeconds_.sample(wait);
            queueWaitHist_.sample(wait);
            if (was_parked) {
                preemptResumeSeconds_.sample(wait);
                preemptResumeHist_.sample(wait);
                eventLocked(*job, "resume",
                            {{"worker", Json(worker)},
                             {"wait_ms", Json(wait * 1e3)}});
            } else {
                eventLocked(*job, "start",
                            {{"worker", Json(worker)},
                             {"attempt", Json(job->retries + 1)},
                             {"wait_ms", Json(wait * 1e3)}});
            }
            traceJobEnd(job->id); // Close the queued/parked span.
            traceJobBegin(job->id, "running");
            job->state = JobState::Running;
            running_[worker] = RunningSlot{job, nullptr, false};
            ++runningJobs_;
            noteQueueDepthLocked();
            // This pop may have taken the last free worker while
            // higher-priority jobs still wait — submit-time preemption
            // checks cannot see that, so re-evaluate for the best job
            // left behind.
            if (const JobRecord *next = queue_.peek())
                maybePreempt(next->priority);
            out = [this, job](GpuArena &arena, unsigned w) {
                runJob(arena, *job, w);
            };
            return true;
        }
        if (shuttingDown_)
            return false; // Drained: retire the worker.
    }
}

void
JobService::runJob(GpuArena &arena, JobRecord &job, unsigned worker)
{
    const auto run_start = std::chrono::steady_clock::now();
    double slice_seconds = 0.0;
    bool slice_accounted = false;
    bool inject = false;
    std::ostringstream interval;
    traceWorkerBegin(worker, "job " + std::to_string(job.id) + " " +
                                 job.spec.workload);
    try {
        // One workload per grid: the classic job is the 1-entry case.
        const std::vector<std::string> names = job.spec.gridWorkloads();
        std::vector<std::unique_ptr<Workload>> workloads;
        std::vector<Kernel> kernels;
        for (const std::string &name : names) {
            workloads.push_back(makeWorkload(name, job.spec.scale));
            kernels.push_back(workloads.back()->buildKernel());
        }
        Gpu &gpu = arena.acquire(job.spec.config);
        std::string resume_from;
        {
            std::lock_guard<std::mutex> lk(mu_);
            RunningSlot &slot = running_[worker];
            slot.gpu = &gpu;
            if (!job.everStarted) {
                job.everStarted = true;
                job.waitSeconds =
                    std::chrono::duration<double>(run_start -
                                                  job.submitted)
                        .count();
                waitSeconds_.sample(job.waitSeconds);
            }
            inject = job.injectedFailures < job.spec.injectFail;
            if (slot.preemptSignalled)
                gpu.requestPreempt(); // Signalled before we had a Gpu.
            resume_from = job.checkpointFile;
        }
        // A recording job opts out of the preemption cadence: trace
        // recording does not compose with mid-run checkpoints (the
        // writer's stream position is not checkpointable), and
        // maybePreempt() already skips cadence-0 slots.
        const Cycle cadence =
            !job.spec.recordTrace.empty() ? 0
            : job.spec.checkpointEvery   ? job.spec.checkpointEvery
                                         : config_.preemptEvery;
        // Applied per slice: GpuArena reuse resets the Gpu (and the
        // shard count) between jobs. The parked image is thread-count
        // agnostic, so a resumed slice may legitimately run with a
        // different sharding than the preempted one.
        if (job.spec.simThreads > 1)
            gpu.setSimThreads(job.spec.simThreads);
        if (!job.spec.recordTrace.empty())
            gpu.enableMtraceRecord(job.spec.recordTrace);
        if (job.spec.statsInterval > 0)
            gpu.enableIntervalSampler(job.spec.statsInterval, interval);
        // Empty path: the cadence only arms preemption boundaries, no
        // per-boundary file is written — images are saved on demand.
        gpu.setCheckpoint("", cadence);
        std::vector<GridLaunch> launches;
        if (!resume_from.empty()) {
            // As in bench_common: prepare() into a scratch memory so
            // the workloads record their buffer addresses and golden
            // outputs for verify() while the restored device contents
            // stay untouched.
            GlobalMemory scratch;
            for (auto &workload : workloads)
                workload->prepare(scratch);
            gpu.restoreCheckpoint(loadImage(resume_from));
            launches = gpu.restoredGrids();
            if (launches.size() != kernels.size()) {
                throw std::runtime_error(
                    "parked image carries " +
                    std::to_string(launches.size()) + " grids, job has " +
                    std::to_string(kernels.size()));
            }
            for (std::size_t g = 0; g < launches.size(); ++g)
                launches[g].kernel = &kernels[g];
        } else {
            for (std::size_t g = 0; g < kernels.size(); ++g) {
                GridLaunch gl;
                gl.kernel = &kernels[g];
                gl.params = workloads[g]->prepare(gpu.memory());
                // Listed-first = higher priority under the preempt
                // policy (lower value wins).
                gl.priority = std::uint32_t(g);
                launches.push_back(std::move(gl));
            }
        }
        if (inject) {
            // Test hook: stop at the first cadence boundary so a
            // checkpoint parks, then fail the attempt below — the
            // retry resumes from that image.
            gpu.requestPreempt();
        }
        const auto t0 = std::chrono::steady_clock::now();
        const KernelStats stats =
            gpu.launchConcurrent(launches, job.spec.sharePolicy);
        slice_seconds = secondsSince(t0);

        if (gpu.preempted()) {
            parkImage(job, gpu, worker);
            {
                std::lock_guard<std::mutex> lk(mu_);
                job.wallSeconds += slice_seconds;
                job.intervalSeries += interval.str();
                busySeconds_ += slice_seconds;
                runSliceSeconds_.sample(slice_seconds);
                runSliceHist_.sample(slice_seconds);
                slice_accounted = true;
                if (inject)
                    ++job.injectedFailures;
            }
            if (inject) {
                throw std::runtime_error(
                    "injected failure (test hook)");
            }
            std::lock_guard<std::mutex> lk(mu_);
            running_[worker] = RunningSlot{};
            --runningJobs_;
            job.state = JobState::Parked;
            ++job.preemptions;
            ++preemptions_;
            ++parkedJobs_;
            job.lastQueuedAt = std::chrono::steady_clock::now();
            eventLocked(job, "park",
                        {{"slice_ms", Json(slice_seconds * 1e3)}});
            traceJobEnd(job.id); // Close the running span.
            traceJobBegin(job.id, "parked");
            traceWorkerEnd(worker);
            queue_.readmit(&job);
            noteQueueDepthLocked();
            workCv_.notify_one();
            return;
        }

        // Completed the grid. A preempt request that raced the finish
        // must not stop the arena's next launch.
        gpu.clearPreemptRequest();
        if (inject) {
            // Finished before the first boundary (or cadence 0): no
            // checkpoint parked, so the injected retry runs from
            // scratch.
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++job.injectedFailures;
            }
            throw std::runtime_error("injected failure (test hook)");
        }
        std::uint32_t depth = 0;
        for (std::uint32_t i = 0; i < gpu.numSms(); ++i)
            depth = std::max(depth, gpu.sm(i).maxSimtDepthSeen());
        bool verified = true;
        for (auto &workload : workloads)
            verified = workload->verify(gpu.memory()) && verified;
        const std::vector<GridStats> grid_stats =
            names.size() > 1 ? gpu.gridStats()
                             : std::vector<GridStats>{};

        std::lock_guard<std::mutex> lk(mu_);
        running_[worker] = RunningSlot{};
        --runningJobs_;
        job.wallSeconds += slice_seconds;
        job.intervalSeries += interval.str();
        busySeconds_ += slice_seconds;
        runSliceSeconds_.sample(slice_seconds);
        runSliceHist_.sample(slice_seconds);
        job.stats = stats;
        job.verified = verified;
        job.maxSimtDepth = depth;
        job.grids = grid_stats;
        dropSpoolFile(job);
        if (verified) {
            job.state = JobState::Done;
            ++completed_;
            if (job.wallSeconds > 0.0) {
                jobKcyclesPerSec_.sample(double(stats.cycles) /
                                         job.wallSeconds / 1e3);
            }
            eventLocked(job, "finish",
                        {{"cycles", Json(stats.cycles)},
                         {"wall_ms", Json(job.wallSeconds * 1e3)},
                         {"verified", Json(true)}});
        } else {
            // Deterministic wrong answers: retrying cannot help.
            job.state = JobState::Failed;
            job.failureReason = "verification failed: wrong results";
            ++failed_;
            eventLocked(job, "fail",
                        {{"reason", Json(job.failureReason)}});
        }
        traceJobEnd(job.id); // Close the running span.
        traceJobInstant(job.id, verified ? "finish" : "fail");
        traceWorkerEnd(worker);
        doneCv_.notify_all();
    } catch (const std::exception &e) {
        // Whatever threw may have left the Gpu mid-launch: never reuse
        // that arena.
        arena.discard();
        std::lock_guard<std::mutex> lk(mu_);
        running_[worker] = RunningSlot{};
        --runningJobs_;
        if (!slice_accounted) {
            if (slice_seconds == 0.0)
                slice_seconds = secondsSince(run_start);
            job.wallSeconds += slice_seconds;
            busySeconds_ += slice_seconds;
            runSliceSeconds_.sample(slice_seconds);
            runSliceHist_.sample(slice_seconds);
        }
        eventLocked(job, "crash",
                    {{"attempt", Json(job.retries + 1)},
                     {"reason", Json(std::string(e.what()))}});
        traceJobEnd(job.id); // Close the running span.
        traceJobInstant(job.id, "crash");
        traceWorkerEnd(worker);
        if (job.retries < 1) {
            ++job.retries;
            ++retries_;
            const bool from_ckpt = !job.checkpointFile.empty();
            if (!from_ckpt) {
                // From-scratch rerun regenerates the whole series; a
                // checkpointed rerun resumes where the parked slices
                // left off, so those stay.
                job.intervalSeries.clear();
            }
            logging::warn("vtsimd", "job ", job.id,
                          " attempt failed (", e.what(),
                          "); retrying from ",
                          from_ckpt ? job.checkpointFile.c_str()
                                    : "scratch");
            eventLocked(job, "retry",
                        {{"from", Json(from_ckpt ? "checkpoint"
                                                 : "scratch")}});
            job.state = JobState::Queued;
            job.lastQueuedAt = std::chrono::steady_clock::now();
            traceJobBegin(job.id, "queued");
            queue_.readmit(&job);
            noteQueueDepthLocked();
            workCv_.notify_one();
        } else {
            job.state = JobState::Failed;
            job.failureReason = e.what();
            ++failed_;
            dropSpoolFile(job);
            logging::error("vtsimd", "job ", job.id,
                           " failed permanently: ", e.what());
            eventLocked(job, "fail",
                        {{"reason", Json(job.failureReason)}});
            doneCv_.notify_all();
        }
    }
}

void
JobService::parkImage(JobRecord &job, Gpu &gpu, unsigned worker)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::uint8_t> image;
    gpu.saveCheckpoint(image);
    std::error_code ec;
    std::filesystem::create_directories(config_.spoolDir, ec);
    const std::string path =
        config_.spoolDir + "/job-" + std::to_string(job.id) + ".ckpt";
    traceWorkerBegin(worker, "checkpoint-write"); // Nested in the slice.
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        traceWorkerEnd(worker);
        throw std::runtime_error("cannot open spool file '" + path +
                                 "'");
    }
    os.write(reinterpret_cast<const char *>(image.data()),
             std::streamsize(image.size()));
    os.flush();
    traceWorkerEnd(worker);
    if (!os)
        throw std::runtime_error("short write to spool file '" + path +
                                 "'");
    // Only the owning worker touches checkpointFile while the job runs
    // (cancel refuses running jobs), so no lock is needed here. A
    // migrated-in job's staged xfer image is superseded by the first
    // park — drop it rather than leak it in the spool dir.
    if (!job.checkpointFile.empty() && job.checkpointFile != path) {
        std::error_code drop_ec;
        std::filesystem::remove(job.checkpointFile, drop_ec);
    }
    job.checkpointFile = path;
    const double write_seconds = secondsSince(t0);
    std::lock_guard<std::mutex> lk(mu_);
    checkpointWriteSeconds_.sample(write_seconds);
    checkpointWriteHist_.sample(write_seconds);
    eventLocked(job, "checkpoint",
                {{"bytes", Json(std::uint64_t(image.size()))},
                 {"write_ms", Json(write_seconds * 1e3)}});
}

JobSnapshot
JobService::wait(JobId id)
{
    std::unique_lock<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        throw ProtocolError("unknown job " + std::to_string(id));
    JobRecord &job = *it->second;
    doneCv_.wait(lk, [&job] { return terminalState(job.state); });
    return snapshotLocked(job);
}

JobSnapshot
JobService::query(JobId id)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        throw ProtocolError("unknown job " + std::to_string(id));
    return snapshotLocked(*it->second);
}

bool
JobService::cancel(JobId id, std::string &error)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        error = "unknown job " + std::to_string(id);
        return false;
    }
    JobRecord &job = *it->second;
    if (job.state == JobState::Running) {
        error = "job is running; only queued or parked jobs cancel";
        return false;
    }
    if (terminalState(job.state)) {
        error = "job already " + toString(job.state);
        return false;
    }
    if (!queue_.remove(&job)) {
        error = "job is not waiting"; // Unreachable by construction.
        return false;
    }
    if (job.state == JobState::Parked)
        --parkedJobs_;
    dropSpoolFile(job);
    job.state = JobState::Cancelled;
    ++cancelled_;
    eventLocked(job, "cancel");
    traceJobEnd(job.id); // Close the queued/parked span.
    traceJobInstant(job.id, "cancel");
    noteQueueDepthLocked();
    doneCv_.notify_all();
    return true;
}

JobService::YankOutcome
JobService::yank(JobId id)
{
    YankOutcome out;
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        out.error = "unknown job " + std::to_string(id);
        return out;
    }
    JobRecord &job = *it->second;
    if (job.state == JobState::Running) {
        out.error = "job is running; only queued or parked jobs yank";
        return out;
    }
    if (terminalState(job.state)) {
        out.error = "job already " + toString(job.state);
        return out;
    }
    if (!queue_.remove(&job)) {
        out.error = "job is not waiting"; // Unreachable by construction.
        return out;
    }
    if (job.state == JobState::Parked)
        --parkedJobs_;
    // Unlike cancel, the parked image survives: the coordinator reads
    // it out chunk by chunk and then sends "release".
    if (!job.checkpointFile.empty()) {
        std::error_code ec;
        const auto size =
            std::filesystem::file_size(job.checkpointFile, ec);
        if (!ec) {
            out.hasImage = true;
            out.imageBytes = size;
        }
    }
    job.state = JobState::Migrated;
    ++migratedOut_;
    out.ok = true;
    eventLocked(job, "yank",
                {{"image", Json(out.hasImage)},
                 {"ckpt_bytes", Json(out.imageBytes)}});
    traceJobEnd(job.id); // Close the queued/parked span.
    traceJobInstant(job.id, "yank");
    noteQueueDepthLocked();
    doneCv_.notify_all();
    return out;
}

bool
JobService::readImageChunk(JobId id, std::uint64_t offset,
                           std::uint64_t len,
                           std::vector<std::uint8_t> &out,
                           std::uint64_t &total, std::string &error)
{
    std::string path;
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            error = "unknown job " + std::to_string(id);
            return false;
        }
        const JobRecord &job = *it->second;
        if (job.state != JobState::Migrated) {
            error = "job is " + toString(job.state) +
                    "; only migrated jobs expose their image";
            return false;
        }
        if (job.checkpointFile.empty()) {
            error = "job has no parked image";
            return false;
        }
        path = job.checkpointFile;
    }
    // File I/O outside the lock: images may be large and the file is
    // stable once the job is Migrated.
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open parked checkpoint '" + path + "'";
        return false;
    }
    is.seekg(0, std::ios::end);
    total = std::uint64_t(is.tellg());
    out.clear();
    if (offset >= total)
        return true; // Past EOF: empty chunk, transfer complete.
    const std::uint64_t take = std::min(len, total - offset);
    out.resize(take);
    is.seekg(std::streamoff(offset));
    is.read(reinterpret_cast<char *>(out.data()),
            std::streamsize(take));
    if (!is) {
        error = "short read from '" + path + "'";
        return false;
    }
    return true;
}

bool
JobService::releaseImage(JobId id, std::string &error)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        error = "unknown job " + std::to_string(id);
        return false;
    }
    JobRecord &job = *it->second;
    if (job.state != JobState::Migrated) {
        error = "job is " + toString(job.state) +
                "; only migrated jobs release";
        return false;
    }
    dropSpoolFile(job);
    return true;
}

JobService::Counts
JobService::counts() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Counts c;
    c.queueDepth = queueDepth_;
    c.running = runningJobs_;
    c.parked = parkedJobs_;
    c.workers = config_.workers;
    return c;
}

JobSnapshot
JobService::snapshotLocked(const JobRecord &job) const
{
    JobSnapshot snap;
    snap.id = job.id;
    snap.state = job.state;
    snap.priority = job.priority;
    snap.workload = job.spec.workload;
    snap.scale = job.spec.scale;
    snap.simThreads = job.spec.simThreads;
    snap.preemptions = job.preemptions;
    snap.retries = job.retries;
    snap.waitSeconds = job.waitSeconds;
    snap.wallSeconds = job.wallSeconds;
    snap.failureReason = job.failureReason;
    snap.stats = job.stats;
    snap.verified = job.verified;
    snap.maxSimtDepth = job.maxSimtDepth;
    snap.intervalSeries = job.intervalSeries;
    snap.grids = job.grids;
    return snap;
}

void
JobService::noteQueueDepthLocked()
{
    queueDepth_ = queue_.depth();
    maxQueueDepth_ = std::max(maxQueueDepth_, queueDepth_);
}

void
JobService::eventLocked(JobRecord &job, const char *event,
                        Json::Object fields)
{
    if (!evlog_)
        return;
    job.lastEventSeq =
        evlog_->emitJob(event, job.id, job.lastEventSeq,
                        std::move(fields));
}

Cycle
JobService::traceNowUs() const
{
    return Cycle(std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - started_)
                     .count());
}

void
JobService::traceWorkerBegin(unsigned worker, const std::string &name)
{
    std::lock_guard<std::mutex> lk(traceMu_);
    if (jobTrace_) {
        jobTrace_->begin(kTraceWorkersPid, worker, traceNowUs(), name,
                         "worker");
    }
}

void
JobService::traceWorkerEnd(unsigned worker)
{
    std::lock_guard<std::mutex> lk(traceMu_);
    if (jobTrace_)
        jobTrace_->end(kTraceWorkersPid, worker, traceNowUs());
}

void
JobService::traceJobBegin(JobId id, const char *phase)
{
    std::lock_guard<std::mutex> lk(traceMu_);
    if (jobTrace_) {
        jobTrace_->begin(kTraceJobsPid, std::uint32_t(id), traceNowUs(),
                         phase, "job");
    }
}

void
JobService::traceJobEnd(JobId id)
{
    std::lock_guard<std::mutex> lk(traceMu_);
    if (jobTrace_)
        jobTrace_->end(kTraceJobsPid, std::uint32_t(id), traceNowUs());
}

void
JobService::traceJobInstant(JobId id, const std::string &name)
{
    std::lock_guard<std::mutex> lk(traceMu_);
    if (jobTrace_) {
        jobTrace_->instant(kTraceJobsPid, std::uint32_t(id),
                           traceNowUs(), name, "job");
    }
}

void
JobService::traceJobThread(const JobRecord &job)
{
    std::lock_guard<std::mutex> lk(traceMu_);
    if (jobTrace_) {
        jobTrace_->threadName(kTraceJobsPid, std::uint32_t(job.id),
                              "job " + std::to_string(job.id) + " (" +
                                  job.spec.workload + ")");
    }
}

std::string
JobService::metricsText() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::ostringstream os;
    telemetry::writePrometheus(os, registry_);
    return os.str();
}

Json
JobService::status() const
{
    std::lock_guard<std::mutex> lk(mu_);
    const double uptime = secondsSince(started_);

    Json::Object queue;
    queue["depth"] = Json(queueDepth_);
    queue["limit"] = Json(std::uint64_t(config_.queueLimit));
    queue["max_depth"] = Json(maxQueueDepth_);

    Json::Object counts;
    counts["submitted"] = Json(submitted_.value());
    counts["completed"] = Json(completed_.value());
    counts["failed"] = Json(failed_.value());
    counts["cancelled"] = Json(cancelled_.value());
    counts["rejected_queue_full"] = Json(rejectedFull_.value());
    counts["running"] = Json(runningJobs_);
    counts["parked"] = Json(parkedJobs_);
    counts["migrated_out"] = Json(migratedOut_.value());
    counts["migrated_in"] = Json(migratedIn_.value());

    Json::Object wait;
    wait["count"] = Json(waitSeconds_.count());
    wait["mean"] = Json(waitSeconds_.mean());
    wait["max"] = Json(waitSeconds_.maxValue());

    Json::Array jobs;
    for (const auto &[id, rec] : jobs_) {
        Json::Object j;
        j["job"] = Json(id);
        j["workload"] = Json(rec->spec.workload);
        j["priority"] = Json(toString(rec->priority));
        j["state"] = Json(toString(rec->state));
        j["preemptions"] = Json(rec->preemptions);
        j["retries"] = Json(rec->retries);
        j["wait_seconds"] = Json(rec->waitSeconds);
        j["wall_seconds"] = Json(rec->wallSeconds);
        if (rec->state == JobState::Done && rec->wallSeconds > 0.0) {
            j["kcycles_per_sec"] = Json(double(rec->stats.cycles) /
                                        rec->wallSeconds / 1e3);
        }
        const std::vector<std::string> grid_names =
            rec->spec.gridWorkloads();
        if (grid_names.size() > 1) {
            // One row per resident grid: name + priority always, the
            // per-grid counters once the job is done.
            j["share_policy"] = Json(toString(rec->spec.sharePolicy));
            Json::Array grids;
            for (std::size_t g = 0; g < grid_names.size(); ++g) {
                Json::Object row;
                row["grid"] = Json(std::uint64_t(g));
                row["kernel"] = Json(grid_names[g]);
                row["priority"] = Json(std::uint64_t(g));
                if (g < rec->grids.size()) {
                    const KernelStats &s = rec->grids[g].stats;
                    row["ipc"] = Json(s.ipc);
                    row["warp_instructions"] = Json(s.warpInstructions);
                    row["ctas_completed"] = Json(s.ctasCompleted);
                }
                grids.push_back(Json(std::move(row)));
            }
            j["grids"] = Json(std::move(grids));
        }
        jobs.push_back(Json(std::move(j)));
    }

    Json::Object o;
    o["ok"] = Json(true);
    o["op"] = Json("status");
    o["uptime_seconds"] = Json(uptime);
    o["workers"] = Json(unsigned(config_.workers));
    o["preempt_every"] = Json(std::uint64_t(config_.preemptEvery));
    o["queue"] = Json(std::move(queue));
    o["jobs"] = Json(std::move(counts));
    o["preemptions"] = Json(preemptions_.value());
    o["retries"] = Json(retries_.value());
    o["wait_seconds"] = Json(std::move(wait));
    o["busy_seconds"] = Json(busySeconds_);
    o["worker_utilization"] =
        Json(uptime > 0.0 ? busySeconds_ / (uptime * config_.workers)
                          : 0.0);
    o["job_list"] = Json(std::move(jobs));
    return Json(std::move(o));
}

Json
JobService::statsJsonSection() const
{
    Json status_obj = status();
    Json::Object o = status_obj.asObject();
    o.erase("ok");
    o.erase("op");
    return Json(std::move(o));
}

std::vector<RunRecord>
JobService::completedRuns() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<RunRecord> runs;
    for (const auto &[id, rec] : jobs_) {
        if (rec->state != JobState::Done)
            continue;
        RunRecord run;
        run.workload = rec->spec.workload;
        const auto names = rec->spec.gridWorkloads();
        if (names.size() > 1) {
            // Concurrent job: label the run like the bench co-runs do
            // ("vecadd+matmul") and record the policy.
            run.workload = names.front();
            for (std::size_t g = 1; g < names.size(); ++g)
                run.workload += "+" + names[g];
            run.sharePolicy = toString(rec->spec.sharePolicy);
        }
        run.scale = rec->spec.scale;
        run.config = rec->spec.config;
        run.verified = rec->verified;
        run.wallSeconds = rec->wallSeconds;
        run.maxSimtDepth = rec->maxSimtDepth;
        run.stats = rec->stats;
        run.intervalSeries = rec->intervalSeries;
        run.grids = rec->grids;
        runs.push_back(std::move(run));
    }
    return runs;
}

} // namespace vtsim::service
