/**
 * @file
 * End-to-end Virtual Thread tests on the full simulator: functional
 * equivalence with the baseline, swap activity on latency-bound
 * workloads, budget semantics, and consistency of the VT counters.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "gpu/gpu.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

using test::smallConfig;

/** Run one workload instance and return its stats + output check. */
KernelStats
runOn(const GpuConfig &cfg, const std::string &name, bool *ok = nullptr)
{
    auto wl = makeWorkload(name, 0);
    const Kernel k = wl->buildKernel();
    Gpu gpu(cfg);
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(k, lp);
    if (ok)
        *ok = wl->verify(gpu.memory());
    return stats;
}

TEST(VtEndToEnd, SameInstructionCountAsBaseline)
{
    // VT changes timing, never the work performed.
    GpuConfig base = smallConfig();
    GpuConfig vt = base;
    vt.vtEnabled = true;
    for (const auto &name : {"vecadd", "reduce", "bfs", "matmul"}) {
        const auto b = runOn(base, name);
        const auto v = runOn(vt, name);
        EXPECT_EQ(b.warpInstructions, v.warpInstructions) << name;
        EXPECT_EQ(b.threadInstructions, v.threadInstructions) << name;
        EXPECT_EQ(b.ctasCompleted, v.ctasCompleted) << name;
    }
}

TEST(VtEndToEnd, SwapsOccurOnLatencyBoundWorkload)
{
    // A single SM with many small, load-dependent CTAs: the canonical
    // swap-friendly shape.
    GpuConfig vt = smallConfig();
    vt.numSms = 1;
    vt.numMemPartitions = 1;
    vt.vtEnabled = true;
    Gpu gpu(vt);
    const Kernel k = test::mul3Add7Kernel();
    const std::uint32_t n = 2048; // 32 CTAs of 64 threads
    const Addr in = gpu.memory().alloc(n * 4);
    const Addr out = gpu.memory().alloc(n * 4);
    LaunchParams lp;
    lp.cta = Dim3(64);
    lp.grid = Dim3(n / 64);
    lp.params = {std::uint32_t(in), std::uint32_t(out), n};
    const auto stats = gpu.launch(k, lp);
    EXPECT_GT(stats.swapOuts, 0u);
    EXPECT_GE(stats.swapIns, stats.swapOuts);
    for (std::uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(gpu.memory().read32(out + 4 * i), 7u) << i;
}

TEST(VtEndToEnd, NoSwapsWhenCapacityLimited)
{
    GpuConfig vt = smallConfig();
    vt.vtEnabled = true;
    const auto stats = runOn(vt, "pathfinder");
    // Capacity admits no more CTAs than the scheduling limit would:
    // nothing to swap with.
    EXPECT_EQ(stats.swapOuts, 0u);
}

TEST(VtEndToEnd, BudgetEqualToSchedulingLimitMatchesBaselineTiming)
{
    GpuConfig base = smallConfig();
    GpuConfig vt = base;
    vt.vtEnabled = true;
    vt.vtMaxVirtualCtasPerSm = base.maxCtasPerSm; // no extra CTAs
    const auto b = runOn(base, "vecadd");
    const auto v = runOn(vt, "vecadd");
    // Same resident set and no swap candidates -> identical schedule.
    EXPECT_EQ(b.cycles, v.cycles);
    EXPECT_EQ(v.swapOuts, 0u);
}

TEST(VtEndToEnd, DeterministicAcrossRuns)
{
    GpuConfig vt = smallConfig();
    vt.vtEnabled = true;
    const auto a = runOn(vt, "stencil");
    const auto b = runOn(vt, "stencil");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.swapOuts, b.swapOuts);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
}

TEST(VtEndToEnd, ZeroSwapLatencyNeverSlowerThanHighLatency)
{
    GpuConfig fast = smallConfig();
    fast.vtEnabled = true;
    fast.vtSwapOutLatency = 0;
    fast.vtSwapInLatency = 0;
    GpuConfig slow = fast;
    slow.vtSwapOutLatency = 200;
    slow.vtSwapInLatency = 200;
    const auto f = runOn(fast, "bfs");
    const auto s = runOn(slow, "bfs");
    EXPECT_LE(f.cycles, s.cycles + s.cycles / 10);
}

TEST(VtEndToEnd, IdealisedBiggerSchedulerBeatsBaseline)
{
    // One SM with 32 small load-dependent CTAs: the enlarged scheduling
    // structures expose 4x the CTAs and must hide more latency.
    GpuConfig base = smallConfig();
    base.numSms = 1;
    base.numMemPartitions = 1;
    GpuConfig big = base;
    big.schedLimitMultiplier = 4;

    auto run = [](const GpuConfig &cfg) {
        Gpu gpu(cfg);
        const Kernel k = test::mul3Add7Kernel();
        const std::uint32_t n = 2048;
        const Addr in = gpu.memory().alloc(n * 4);
        const Addr out = gpu.memory().alloc(n * 4);
        LaunchParams lp;
        lp.cta = Dim3(64);
        lp.grid = Dim3(n / 64);
        lp.params = {std::uint32_t(in), std::uint32_t(out), n};
        return gpu.launch(k, lp);
    };
    EXPECT_LT(run(big).cycles, run(base).cycles);
}

TEST(VtEndToEnd, StallBreakdownCoversAllCycles)
{
    GpuConfig vt = smallConfig();
    vt.vtEnabled = true;
    const auto s = runOn(vt, "reduce");
    const std::uint64_t total = s.stalls.issued + s.stalls.memStall +
                                s.stalls.shortStall +
                                s.stalls.barrierStall +
                                s.stalls.swapStall + s.stalls.idle;
    // Every scheduler-cycle of the launch is classified exactly once.
    EXPECT_EQ(total, std::uint64_t(s.cycles) * vt.numSms *
                         vt.numSchedulers);
}

TEST(VtEndToEnd, SchedulerPoliciesAllProduceCorrectResults)
{
    for (auto policy : {SchedulerPolicy::LooseRoundRobin,
                        SchedulerPolicy::GreedyThenOldest,
                        SchedulerPolicy::TwoLevel}) {
        GpuConfig cfg = smallConfig();
        cfg.vtEnabled = true;
        cfg.schedulerPolicy = policy;
        bool ok = false;
        runOn(cfg, "reduce", &ok);
        EXPECT_TRUE(ok) << toString(policy);
    }
}

TEST(VtEndToEnd, SwapPolicyVariantsProduceCorrectResults)
{
    for (auto trigger : {VtSwapTrigger::AllWarpsStalled,
                         VtSwapTrigger::AnyWarpStalled}) {
        for (auto pick : {VtSwapInPolicy::ReadyFirst,
                          VtSwapInPolicy::OldestFirst}) {
            GpuConfig cfg = smallConfig();
            cfg.vtEnabled = true;
            cfg.vtSwapTrigger = trigger;
            cfg.vtSwapInPolicy = pick;
            bool ok = false;
            runOn(cfg, "bfs", &ok);
            EXPECT_TRUE(ok) << toString(trigger) << "/" << toString(pick);
        }
    }
}

TEST(VtEndToEnd, HeadlineSpeedupRegressionGuard)
{
    // The canonical latency-bound shape must keep a solid VT win; this
    // guards the FIG-3 result against timing-model regressions.
    auto run = [](bool vt_on) {
        GpuConfig cfg = smallConfig();
        cfg.numSms = 1;
        cfg.numMemPartitions = 1;
        cfg.vtEnabled = vt_on;
        Gpu gpu(cfg);
        const Kernel k = test::mul3Add7Kernel();
        const std::uint32_t n = 4096; // 64 CTAs of 64 threads
        const Addr in = gpu.memory().alloc(n * 4);
        const Addr out = gpu.memory().alloc(n * 4);
        LaunchParams lp;
        lp.cta = Dim3(64);
        lp.grid = Dim3(n / 64);
        lp.params = {std::uint32_t(in), std::uint32_t(out), n};
        return gpu.launch(k, lp).cycles;
    };
    const double speedup = double(run(false)) / run(true);
    EXPECT_GT(speedup, 1.15);
}

TEST(VtEndToEnd, KeplerConfigRunsVt)
{
    GpuConfig cfg = GpuConfig::keplerLike();
    cfg.numSms = 2;
    cfg.numMemPartitions = 2;
    cfg.vtEnabled = true;
    bool ok = false;
    runOn(cfg, "vecadd", &ok);
    EXPECT_TRUE(ok);
}

} // namespace
} // namespace vtsim
