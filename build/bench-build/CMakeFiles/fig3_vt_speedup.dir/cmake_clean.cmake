file(REMOVE_RECURSE
  "../bench/fig3_vt_speedup"
  "../bench/fig3_vt_speedup.pdb"
  "CMakeFiles/fig3_vt_speedup.dir/fig3_vt_speedup.cc.o"
  "CMakeFiles/fig3_vt_speedup.dir/fig3_vt_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vt_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
