#!/usr/bin/env python3
"""Validate a vtsim-evlog-v1 job-lifecycle event log.

Standard library only (runs on a bare CI image). Mirrors the C++
writer (src/service/event_log.hh) check for check — keep the two and
tests/test_evlog.cc in lockstep:

 - every line is a JSON object tagged "v": "vtsim-evlog-v1";
 - "seq" is consecutive from 1 (nothing dropped or reordered);
 - "t_ms" never decreases;
 - every "event" kind is known and carries its required fields;
 - job events chain: "parent" is the seq of the job's previous event,
   and an admit's parent is the seq of a submit event;
 - at most one truncated line, and only at the tail (a daemon killed
   mid-write loses at most the line being written).

With --reconstruct, additionally rebuilds each finished job's timeline
from its events and asserts the phase segments (queued / running /
parked) are contiguous and that the running segments cover the job's
reported wall time to within --wall-tolerance (default 10%: the
finish event's wall_ms is measured around the launch calls, the event
timestamps around queue transitions, so scheduling overhead sits
between them).

Usage: validate_evlog.py <events.jsonl> [--reconstruct]
Exit status 0 when valid; 1 with one line per violation otherwise.
"""

import argparse
import json
import sys

# Fields beyond v/seq/t_ms/event that each kind must carry.
REQUIRED = {
    "log_open": ["pid"],
    "service_start": ["workers", "queue_limit", "preempt_every"],
    "listening": ["socket"],
    "accept_error": ["error"],
    "submit": ["workload", "scale", "priority"],
    "admit": ["job", "parent", "workload", "scale", "priority"],
    "reject": ["parent", "reason"],
    "start": ["job", "parent", "worker", "attempt", "wait_ms"],
    "resume": ["job", "parent", "worker", "wait_ms"],
    "checkpoint": ["job", "parent", "bytes", "write_ms"],
    "preempt": ["job", "parent", "by_priority"],
    "park": ["job", "parent", "slice_ms"],
    "crash": ["job", "parent", "attempt", "reason"],
    "retry": ["job", "parent", "from"],
    "finish": ["job", "parent", "cycles", "wall_ms", "verified"],
    "fail": ["job", "parent", "reason"],
    "cancel": ["job", "parent"],
    "drain": [],
    "service_stop": [],
    # Daemon side of the distributed fabric: a queued or parked job
    # removed by the coordinator for execution elsewhere.
    "yank": ["job", "parent", "image", "ckpt_bytes"],
    # Coordinator (vtsim-coord) lifecycle; its log shares the
    # vtsim-evlog-v1 framing and the submit/admit/finish/fail kinds,
    # with fabric-global job ids.
    "coord_start": ["listen"],
    "register": ["node", "addr", "workers"],
    "node_lost": ["node", "requeued"],
    "dispatch": ["job", "parent", "node", "local_job"],
    "steal": ["job", "parent", "from", "to"],
    "migrate": ["job", "parent", "from", "to", "bytes"],
    "throttle": ["parent", "tenant", "reason", "retry_after_ms"],
}

# Job phase transitions driven by each kind, for --reconstruct.
# state -> event -> new state; "running" time accrues between
# start/resume and park/crash/finish/fail.
PHASE_ENTER = {"start": "running", "resume": "running"}
PHASE_EXIT = {"park": "parked", "crash": "queued", "retry": "queued",
              "finish": "done", "fail": "failed", "cancel": "cancelled"}


def parse_lines(path, errors):
    events = []
    with open(path, "rb") as handle:
        lines = handle.read().split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    for i, raw in enumerate(lines):
        if not raw:
            continue
        try:
            events.append(json.loads(raw))
        except ValueError:
            if i == len(lines) - 1:
                continue  # Mid-write kill: tolerated at the tail only.
            errors.append(f"line {i + 1}: unparseable non-tail line")
    return events


def check_events(events, errors):
    last_seq_per_job = {}
    kind_at_seq = {}
    last_t = -1.0
    for i, event in enumerate(events):
        where = f"event {i + 1}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        if event.get("v") != "vtsim-evlog-v1":
            errors.append(f"{where}: bad or missing schema tag")
        if event.get("seq") != i + 1:
            errors.append(
                f"{where}: seq {event.get('seq')} != expected {i + 1}")
        t_ms = event.get("t_ms")
        if not isinstance(t_ms, (int, float)) or t_ms < last_t:
            errors.append(f"{where}: t_ms not monotonic")
        else:
            last_t = t_ms
        kind = event.get("event")
        kind_at_seq[i + 1] = kind
        if kind not in REQUIRED:
            errors.append(f"{where}: unknown event kind {kind!r}")
            continue
        for field in REQUIRED[kind]:
            if field not in event:
                errors.append(f"{where}: {kind} missing {field!r}")
        if "job" in event:
            job = event["job"]
            parent = event.get("parent")
            if kind == "admit":
                if kind_at_seq.get(parent) != "submit":
                    errors.append(
                        f"{where}: admit parent {parent} is not a submit")
            elif parent != last_seq_per_job.get(job):
                errors.append(
                    f"{where}: {kind} of job {job} has parent {parent},"
                    f" expected {last_seq_per_job.get(job)}")
            last_seq_per_job[job] = i + 1
    if events:
        if events[0].get("event") != "log_open":
            errors.append("first event is not log_open")
        if events[-1].get("event") not in ("service_stop", None):
            # A live daemon's log legitimately ends mid-stream; only
            # flag a *closed* log that ends on the wrong note.
            if any(e.get("event") == "drain" for e in events):
                errors.append("drained log does not end with service_stop")


def reconstruct(events, tolerance, errors):
    """Rebuild per-job timelines; check contiguity and wall coverage."""
    jobs = {}
    for event in events:
        job = event.get("job")
        if job is None:
            continue
        jobs.setdefault(job, []).append(event)
    reconstructed = 0
    for job, stream in sorted(jobs.items()):
        if not any(e.get("event") in PHASE_ENTER for e in stream):
            # A coordinator log's job chain (admit -> dispatch ->
            # steal/migrate -> finish) carries the daemon-measured
            # wall but no run slices of its own; nothing to cover.
            continue
        running_ms = 0.0
        run_open = None
        wall_ms = None
        for event in stream:
            kind = event["event"]
            if kind in PHASE_ENTER:
                if run_open is not None:
                    errors.append(f"job {job}: {kind} while running")
                run_open = event["t_ms"]
            elif kind in PHASE_EXIT:
                if kind in ("finish", "park", "crash"):
                    if run_open is None:
                        errors.append(f"job {job}: {kind} while not running")
                    else:
                        running_ms += event["t_ms"] - run_open
                        run_open = None
                if kind == "finish":
                    wall_ms = event["wall_ms"]
        if run_open is not None:
            errors.append(f"job {job}: log ends mid-slice")
        if wall_ms is None:
            continue  # Not finished (failed/cancelled/still running).
        reconstructed += 1
        # The run slices bracket the launch calls, so their sum can
        # only exceed the in-launch wall, never undercut it.
        if running_ms < wall_ms * (1.0 - tolerance):
            errors.append(
                f"job {job}: run slices sum to {running_ms:.1f}ms,"
                f" less than wall {wall_ms:.1f}ms")
        if running_ms > wall_ms * (1.0 + tolerance) + 50.0:
            errors.append(
                f"job {job}: run slices sum to {running_ms:.1f}ms,"
                f" far beyond wall {wall_ms:.1f}ms")
    return reconstructed


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("log")
    parser.add_argument("--reconstruct", action="store_true")
    parser.add_argument("--wall-tolerance", type=float, default=0.10)
    args = parser.parse_args()

    errors = []
    events = parse_lines(args.log, errors)
    if not events:
        errors.append("empty event log")
    check_events(events, errors)
    summary = f"{args.log}: {len(events)} events"
    if args.reconstruct and not errors:
        count = reconstruct(events, args.wall_tolerance, errors)
        summary += f", {count} job timelines reconstructed"
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    kinds = {}
    for event in events:
        kinds[event["event"]] = kinds.get(event["event"], 0) + 1
    jobs = len({e["job"] for e in events if "job" in e})
    print(f"{summary}, {jobs} jobs, kinds: "
          + " ".join(f"{k}={v}" for k, v in sorted(kinds.items())))
    return 0


if __name__ == "__main__":
    sys.exit(main())
