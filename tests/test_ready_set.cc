/**
 * @file
 * Properties of the incrementally maintained ready-warp sets.
 *
 * Two guarantees back the O(ready warps) issue path:
 *   (a) the per-scheduler ready lists and stall counters always agree
 *       with a full rescan of every warp — checked every tick by the
 *       in-simulator oracle (readySetOracle), which panics on the first
 *       divergence; and
 *   (b) the feature is stats-invisible: end-of-run KernelStats are bit
 *       identical with incrementalReadySets on and off, on the baseline,
 *       Virtual Thread, and CTA-throttled machines alike.
 * Configurations are drawn from a seeded RNG so the properties are
 * exercised across scheduler policies, scheduler counts, and both swap
 * triggers, not just the defaults.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

using test::smallConfig;

/** Every field of KernelStats, bit for bit. */
void
expectIdenticalStats(const KernelStats &a, const KernelStats &b,
                     const std::string &context)
{
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.warpInstructions, b.warpInstructions) << context;
    EXPECT_EQ(a.threadInstructions, b.threadInstructions) << context;
    EXPECT_EQ(a.ctasCompleted, b.ctasCompleted) << context;
    EXPECT_EQ(a.ipc, b.ipc) << context;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << context;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << context;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << context;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << context;
    EXPECT_EQ(a.dramRowHits, b.dramRowHits) << context;
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << context;
    EXPECT_EQ(a.dramBytes, b.dramBytes) << context;
    EXPECT_EQ(a.swapOuts, b.swapOuts) << context;
    EXPECT_EQ(a.swapIns, b.swapIns) << context;
    EXPECT_EQ(a.stalls.issued, b.stalls.issued) << context;
    EXPECT_EQ(a.stalls.memStall, b.stalls.memStall) << context;
    EXPECT_EQ(a.stalls.shortStall, b.stalls.shortStall) << context;
    EXPECT_EQ(a.stalls.barrierStall, b.stalls.barrierStall) << context;
    EXPECT_EQ(a.stalls.swapStall, b.stalls.swapStall) << context;
    EXPECT_EQ(a.stalls.idle, b.stalls.idle) << context;
}

KernelStats
runOn(const GpuConfig &cfg, const std::string &name)
{
    auto wl = makeWorkload(name, 0);
    const Kernel k = wl->buildKernel();
    Gpu gpu(cfg);
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(k, lp);
    EXPECT_TRUE(wl->verify(gpu.memory())) << name;
    return stats;
}

/** Baseline, VT, and throttled variants of one base config. */
std::vector<std::pair<std::string, GpuConfig>>
machineVariants(const GpuConfig &base)
{
    GpuConfig vt = base;
    vt.vtEnabled = true;
    GpuConfig throttled = base;
    throttled.throttleEnabled = true;
    return {{"baseline", base}, {"vt", vt}, {"throttle", throttled}};
}

/** Draw a config variation from @p rng (scheduler shape + VT knobs). */
GpuConfig
randomConfig(std::mt19937 &rng)
{
    GpuConfig cfg = smallConfig();
    const SchedulerPolicy policies[] = {SchedulerPolicy::LooseRoundRobin,
                                        SchedulerPolicy::GreedyThenOldest,
                                        SchedulerPolicy::TwoLevel};
    cfg.schedulerPolicy = policies[rng() % 3];
    cfg.numSchedulers = 1 + rng() % 4;
    cfg.vtSwapTrigger = rng() % 2 == 0 ? VtSwapTrigger::AllWarpsStalled
                                       : VtSwapTrigger::AnyWarpStalled;
    cfg.vtStallThreshold = 2 + rng() % 6;
    return cfg;
}

/**
 * Property (a): the oracle cross-checks lists and counters against a
 * full scan on every non-fast-forwarded tick and panics on divergence,
 * so a clean run IS the assertion. Seeded-random configs x the three
 * machines x a mix of barrier-heavy, divergent, and memory-bound
 * workloads.
 */
TEST(ReadySet, OracleCleanAcrossRandomConfigs)
{
    std::mt19937 rng(20160618); // ISCA'16 vintage; fixed for repro.
    const char *workloads[] = {"vecadd", "reduce", "bfs", "stencil",
                               "histogram", "transpose"};
    for (int draw = 0; draw < 4; ++draw) {
        GpuConfig cfg = randomConfig(rng);
        cfg.readySetOracle = true;
        const std::string wl = workloads[rng() % 6];
        for (auto &[tag, variant] : machineVariants(cfg))
            runOn(variant, wl);
    }
}

/** Property (b) on the three machines with the default config. */
TEST(ReadySet, BitIdenticalStatsFeatureOnOff)
{
    GpuConfig on = smallConfig();
    on.incrementalReadySets = true;
    GpuConfig off = smallConfig();
    off.incrementalReadySets = false;
    for (const auto &name : {"vecadd", "reduce", "bfs", "matmul"}) {
        const auto on_variants = machineVariants(on);
        const auto off_variants = machineVariants(off);
        for (std::size_t m = 0; m < on_variants.size(); ++m) {
            const KernelStats a = runOn(on_variants[m].second, name);
            const KernelStats b = runOn(off_variants[m].second, name);
            expectIdenticalStats(a, b, on_variants[m].first + "/" + name);
        }
    }
}

/** Property (b) again under randomized scheduler/VT configurations. */
TEST(ReadySet, BitIdenticalStatsFeatureOnOffRandomConfigs)
{
    std::mt19937 rng(0x5eed);
    const char *workloads[] = {"vecadd", "bfs", "stencil", "histogram"};
    for (int draw = 0; draw < 4; ++draw) {
        const GpuConfig base = randomConfig(rng);
        const std::string wl = workloads[rng() % 4];
        GpuConfig on = base;
        on.incrementalReadySets = true;
        GpuConfig off = base;
        off.incrementalReadySets = false;
        const auto on_variants = machineVariants(on);
        const auto off_variants = machineVariants(off);
        for (std::size_t m = 0; m < on_variants.size(); ++m) {
            const KernelStats a = runOn(on_variants[m].second, wl);
            const KernelStats b = runOn(off_variants[m].second, wl);
            expectIdenticalStats(a, b, "draw" + std::to_string(draw) + "/" +
                                           on_variants[m].first + "/" + wl);
        }
    }
}

/** The oracle also holds with the sweep running the legacy full-scan
 *  path (sets are maintained either way and must agree with it). */
TEST(ReadySet, OracleCleanWithFeatureOff)
{
    GpuConfig cfg = smallConfig();
    cfg.incrementalReadySets = false;
    cfg.readySetOracle = true;
    for (auto &[tag, variant] : machineVariants(cfg))
        runOn(variant, "reduce");
}

} // namespace
} // namespace vtsim
