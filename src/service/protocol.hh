/**
 * @file
 * The vtsimd wire protocol: newline-delimited JSON over a Unix-domain
 * socket. Each request is one JSON object on one line; each reply is
 * one JSON object on one line. Requests larger than the daemon's line
 * cap are rejected without parsing.
 *
 * Ops:
 *   {"op":"submit","workload":W,...}   -> {"ok":true,"job":N} |
 *                                         {"ok":false,"rejected":"queue_full"}
 *   {"op":"wait","job":N}              -> terminal job snapshot (blocks)
 *   {"op":"query","job":N}             -> current job snapshot
 *   {"op":"status"}                    -> service telemetry snapshot
 *   {"op":"cancel","job":N}            -> {"ok":true} (queued/parked only)
 *   {"op":"ping"}                      -> {"ok":true,"op":"ping"}
 *   {"op":"metrics"}                   -> {"ok":true,"body":<Prometheus text>}
 *   {"op":"shutdown"}                  -> {"ok":true,"state":"draining"}
 *
 * Fabric ops (the coordinator's steal/migrate half of the protocol;
 * docs/ARCHITECTURE.md "Distributed fabric"):
 *   {"op":"yank","job":N}              -> {"ok":true,"job":N,
 *                                          "image":bool,"ckpt_bytes":B}
 *       Remove a queued/parked job from this daemon for execution
 *       elsewhere (terminal state "migrated" here). Fails on running
 *       or terminal jobs — a steal that lost the race is a no-op.
 *   {"op":"ckpt_read","job":N,"offset":O,"len":L}
 *                                      -> {"ok":true,"data":<base64>,
 *                                          "bytes":B,"total":T}
 *       Read a chunk of a yanked job's parked checkpoint image.
 *   {"op":"release","job":N}           -> {"ok":true}
 *       Drop a yanked job's image once the transfer is complete.
 *   {"op":"ckpt_begin"}                -> {"ok":true,"xfer":K}
 *   {"op":"ckpt_chunk","xfer":K,"data":<base64>}
 *                                      -> {"ok":true,"bytes":<total>}
 *       Stage an incoming image chunk by chunk (chunks must fit the
 *       64 KiB request-line cap; replies are uncapped).
 *   submit may carry "resume_xfer":K   -> the job starts from the
 *       staged image instead of from scratch (bit-identical resume).
 *
 * Submit fields: workload (required), scale, priority
 * ("low"|"normal"|"high"), config (object of GpuConfig overrides — see
 * applyConfigOverrides), stats_interval, checkpoint_every, inject_fail
 * (test hook). Malformed requests raise ProtocolError/JsonError, which
 * the daemon converts into {"ok":false,"error":...} replies — a bad
 * request must never take the service down.
 */

#ifndef VTSIM_SERVICE_PROTOCOL_HH
#define VTSIM_SERVICE_PROTOCOL_HH

#include <string>

#include "service/job.hh"
#include "service/json.hh"

namespace vtsim::service {

/** A syntactically valid JSON request that violates the protocol. */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &what)
        : std::runtime_error(what)
    {}
};

struct Request
{
    enum class Op
    {
        Submit, Wait, Query, Status, Cancel, Ping, Metrics, Shutdown,
        // Fabric ops (steal/migrate; see the file comment).
        Yank, CkptRead, CkptBegin, CkptChunk, Release
    };

    Op op = Op::Ping;
    JobSpec spec;                          ///< Submit only.
    Priority priority = Priority::Normal;  ///< Submit only.
    JobId job = 0;       ///< Wait/Query/Cancel/Yank/CkptRead/Release.
    /** Submit: staged-transfer id to resume from (0 = none). */
    std::uint64_t resumeXfer = 0;
    std::uint64_t offset = 0;              ///< CkptRead only.
    std::uint64_t len = 0;                 ///< CkptRead only.
    std::uint64_t xfer = 0;                ///< CkptChunk only.
    std::string data;                      ///< CkptChunk only (base64).
};

/** Parse one request line. Throws JsonError or ProtocolError. */
Request parseRequest(const std::string &line);

/**
 * Apply a submit request's "config" object onto @p cfg. Accepted keys
 * (a deliberate allowlist — the service exposes experiment knobs, not
 * raw machine internals): num_sms, num_mem_partitions, vt_enabled,
 * vt_max_virtual_ctas_per_sm, vt_swap_latency, throttle_enabled,
 * scheduler ("lrr"|"gto"|"two-level"), l1_bypass_global_loads,
 * sched_limit_multiplier, fast_forward, max_cycles. Unknown keys or
 * out-of-range values throw ProtocolError.
 */
void applyConfigOverrides(GpuConfig &cfg, const Json &overrides);

/** "low"/"normal"/"high" -> Priority; throws ProtocolError. */
Priority parsePriority(const std::string &name);

/** Full KernelStats as a JSON object (the stats-json field names). */
Json kernelStatsToJson(const KernelStats &stats);

/** Inverse of kernelStatsToJson; throws on missing fields. */
KernelStats kernelStatsFromJson(const Json &json);

/** The terminal/current state of @p snap as a reply object. */
Json snapshotToJson(const JobSnapshot &snap);

/** {"ok":false,"error":<message>} on one line. */
std::string errorReply(const std::string &message);

} // namespace vtsim::service

#endif // VTSIM_SERVICE_PROTOCOL_HH
