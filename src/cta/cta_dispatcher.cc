#include "cta/cta_dispatcher.hh"

#include "common/log.hh"

namespace vtsim {

CtaDispatcher::CtaDispatcher(const LaunchParams &launch)
    : grid_(launch.grid), total_(launch.numCtas())
{
    VTSIM_ASSERT(total_ > 0, "empty grid");
}

CtaAssignment
CtaDispatcher::next()
{
    VTSIM_ASSERT(hasWork(), "dispatcher exhausted");
    const std::uint64_t id = next_++;
    CtaAssignment a;
    a.linearId = id;
    a.idx.x = static_cast<std::uint32_t>(id % grid_.x);
    a.idx.y = static_cast<std::uint32_t>((id / grid_.x) % grid_.y);
    a.idx.z = static_cast<std::uint32_t>(id / (std::uint64_t(grid_.x) *
                                               grid_.y));
    return a;
}

void
CtaDispatcher::setDispatched(std::uint64_t n)
{
    VTSIM_ASSERT(n <= total_, "restored dispatch cursor past grid end");
    next_ = n;
}

} // namespace vtsim
