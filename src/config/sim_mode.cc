#include "config/sim_mode.hh"

#include "common/log.hh"

namespace vtsim {

std::string
validateSimMode(const SimModeSpec &spec)
{
    if (spec.recordTrace && spec.replayTrace)
        return "--record-trace and --replay-trace are mutually exclusive";
    if (spec.recordTrace && spec.numGrids > 1) {
        return "trace recording is a single-kernel stream; it does not "
               "compose with concurrent launches";
    }
    if (spec.recordTrace && spec.checkpointEvery != 0) {
        return "trace recording does not compose with mid-run checkpoints "
               "or preemption (the writer's stream position is not "
               "checkpointable)";
    }
    if (spec.recordTrace && spec.restore) {
        return "trace recording must start at a fresh launch, not on a "
               "resumed checkpoint (the trace would miss the accesses "
               "before the restore point)";
    }
    if (spec.replayTrace && spec.numGrids > 1) {
        return "trace replay drives one recorded kernel's access stream; "
               "it does not compose with concurrent launches";
    }
    if (spec.numGrids > 1 && spec.preemptPolicy && !spec.vtEnabled) {
        return "the preempt share policy needs the VT machine (vtEnabled) "
               "to vacate active CTA slots";
    }
    return "";
}

void
requireValidSimMode(const SimModeSpec &spec)
{
    const std::string error = validateSimMode(spec);
    if (!error.empty())
        VTSIM_FATAL(error);
}

} // namespace vtsim
