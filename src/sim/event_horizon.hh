/**
 * @file
 * Central fast-forward scheduler owned by Gpu.
 *
 * One place computes how far the global clock may jump when a cycle did
 * no work: the minimum of every registered component's nextEventCycle,
 * clamped by caller-supplied boundary constraints (the simulation
 * deadline, interval-sampler boundaries, checkpoint boundaries). The
 * per-component copies of this min/clamp logic that used to live in
 * Gpu::launch and in each component's fastForwardIdle are gone; a jump
 * is performed by settling every component to the target cycle and
 * advancing the clock here, which also owns the skipped-cycle counter.
 *
 * The verifyHorizon oracle recomputes each component's next event
 * without caches (nextEventCycleFresh) and asserts none precedes the
 * computed horizon — i.e. a fast-forward can never skip real work. It
 * runs on every jump in debug builds and under
 * GpuConfig::horizonOracle in release builds.
 */

#ifndef VTSIM_SIM_EVENT_HORIZON_HH
#define VTSIM_SIM_EVENT_HORIZON_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/sim_component.hh"

namespace vtsim {

class EventHorizon
{
  public:
    /** Boundary constraint: earliest cycle > now the horizon must not
     *  pass (neverCycle when unconstrained). */
    using Constraint = Cycle (*)(void *ctx, Cycle now);

    /** Register a component. Registration order is also the save/
     *  restore/reset/settle order, so it must be deterministic. */
    void add(SimComponent *c) { components_.push_back(c); }

    void addConstraint(Constraint fn, void *ctx)
    { constraints_.push_back({fn, ctx}); }

    void clearConstraints() { constraints_.clear(); }

    /**
     * The furthest cycle > @p now the clock may jump to, or @p now when
     * no jump is possible (some component has work at `now`, or a
     * constraint binds immediately).
     */
    Cycle target(Cycle now, Cycle deadline);

    /**
     * Jump from @p now to @p to: settle every component, accumulate the
     * skipped cycles, and (when @p oracle) verify no component's fresh
     * next event precedes @p to.
     */
    void advance(Cycle now, Cycle to, bool oracle);

    /** Cycles skipped by fast-forward since construction/reset. */
    std::uint64_t fastForwarded() const { return fastForwarded_; }

    void resetAll();
    void saveAll(Serializer &ser) const;
    void restoreAll(Deserializer &des);

    /** Assert every component's cache-free next event is >= horizon.
     *  Non-const: recomputing may flush deferred accounting. */
    void verifyHorizon(Cycle now, Cycle horizon);

  private:
    struct BoundConstraint
    {
        Constraint fn;
        void *ctx;
    };

    std::vector<SimComponent *> components_;
    std::vector<BoundConstraint> constraints_;
    std::uint64_t fastForwarded_ = 0;
};

} // namespace vtsim

#endif // VTSIM_SIM_EVENT_HORIZON_HH
