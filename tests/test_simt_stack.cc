/**
 * @file
 * Unit tests for the PDOM SIMT reconvergence stack.
 */

#include <gtest/gtest.h>

#include "sm/simt_stack.hh"

namespace vtsim {
namespace {

Instruction
branch(Pc target, Pc reconverge)
{
    Instruction i;
    i.op = Opcode::BRA;
    i.src[0] = 0;
    i.branchTarget = target;
    i.reconvergePc = reconverge;
    return i;
}

TEST(SimtStack, ResetAndAdvance)
{
    SimtStack s;
    s.reset(ActiveMask::firstLanes(8));
    EXPECT_FALSE(s.done());
    EXPECT_EQ(s.pc(), 0u);
    EXPECT_EQ(s.activeMask().count(), 8u);
    s.advance();
    EXPECT_EQ(s.pc(), 1u);
}

TEST(SimtStack, ResetWithEmptyMaskIsDone)
{
    SimtStack s;
    s.reset(ActiveMask::none());
    EXPECT_TRUE(s.done());
}

TEST(SimtStack, UniformTakenBranch)
{
    SimtStack s;
    s.reset(ActiveMask::all());
    s.branch(branch(10, 10), 0, ActiveMask::all());
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.activeMask(), ActiveMask::all());
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, UniformNotTakenBranch)
{
    SimtStack s;
    s.reset(ActiveMask::all());
    s.branch(branch(10, 10), 0, ActiveMask::none());
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, IfThenDivergenceAndReconvergence)
{
    // bra at pc 0 -> target 5 == reconverge 5 (if-then idiom).
    SimtStack s;
    s.reset(ActiveMask::all());
    const ActiveMask taken(0xffff0000u);
    s.branch(branch(5, 5), 0, taken);
    // Taken side target == rpc pops immediately; not-taken runs first.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask().bits(), 0x0000ffffu);
    EXPECT_EQ(s.depth(), 2u);
    for (Pc pc = 1; pc < 5; ++pc)
        s.advance();
    // Reached pc 5: reconverged to the full mask.
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.activeMask(), ActiveMask::all());
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, IfElseWithExplicitJoin)
{
    // pc0: bra taken->3 (else), rpc 5; pc1..2 then-side; pc3..4 else.
    SimtStack s;
    s.reset(ActiveMask::all());
    const ActiveMask taken(0x000000ffu);
    s.branch(branch(3, 5), 0, taken);
    // Taken (else at pc 3) executes first per push order.
    EXPECT_EQ(s.pc(), 3u);
    EXPECT_EQ(s.activeMask(), taken);
    EXPECT_EQ(s.depth(), 3u);
    s.advance(); // pc 4
    s.advance(); // pc 5 == rpc -> pop to not-taken side
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask().bits(), 0xffffff00u);
    s.advance(); // 2
    s.advance(); // 3
    s.advance(); // 4
    s.advance(); // 5 == rpc -> pop to reconverged frame
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.activeMask(), ActiveMask::all());
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, LoopDivergence)
{
    // pc2: bra back to 0, rpc = 3 (fall-through).
    SimtStack s;
    s.reset(ActiveMask::firstLanes(4));
    s.advance();
    s.advance(); // at pc 2
    const ActiveMask continuing(0b0011u);
    s.branch(branch(0, 3), 2, continuing);
    // Continuing lanes loop; exited lanes wait at pc 3.
    EXPECT_EQ(s.pc(), 0u);
    EXPECT_EQ(s.activeMask(), continuing);
    s.advance();
    s.advance(); // at pc 2 again
    // Now everyone exits the loop.
    s.branch(branch(0, 3), 2, ActiveMask::none());
    EXPECT_EQ(s.pc(), 3u);
    EXPECT_EQ(s.activeMask(), ActiveMask::firstLanes(4));
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack s;
    s.reset(ActiveMask::all());
    // Outer: diverge at 0, rpc 10.
    s.branch(branch(10, 10), 0, ActiveMask(0xffff0000u));
    EXPECT_EQ(s.pc(), 1u); // lower half first
    // Inner: diverge at 1, rpc 5.
    s.branch(branch(5, 5), 1, ActiveMask(0x000000ffu));
    EXPECT_EQ(s.pc(), 2u);
    EXPECT_EQ(s.activeMask().bits(), 0x0000ff00u);
    EXPECT_GE(s.maxDepth(), 3u);
    for (Pc pc = 2; pc < 5; ++pc)
        s.advance();
    // Inner reconverged.
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.activeMask().bits(), 0x0000ffffu);
    for (Pc pc = 5; pc < 10; ++pc)
        s.advance();
    // Outer reconverged.
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.activeMask(), ActiveMask::all());
}

TEST(SimtStack, ExitAllLanes)
{
    SimtStack s;
    s.reset(ActiveMask::all());
    s.exitActiveLanes();
    EXPECT_TRUE(s.done());
}

TEST(SimtStack, ExitOneSideOfDivergence)
{
    SimtStack s;
    s.reset(ActiveMask::all());
    const ActiveMask taken(0xffff0000u);
    // Diverge: taken -> 5, rpc 7 (explicit join beyond target).
    s.branch(branch(5, 7), 0, taken);
    EXPECT_EQ(s.pc(), 5u); // taken side first here (target != rpc)
    s.exitActiveLanes();   // upper half exits inside the branch
    EXPECT_FALSE(s.done());
    EXPECT_EQ(s.pc(), 1u); // not-taken side resumes
    EXPECT_EQ(s.activeMask().bits(), 0x0000ffffu);
    for (Pc pc = 1; pc < 7; ++pc)
        s.advance();
    EXPECT_EQ(s.pc(), 7u);
    EXPECT_EQ(s.activeMask().bits(), 0x0000ffffu);
    s.exitActiveLanes();
    EXPECT_TRUE(s.done());
}

TEST(SimtStack, MaxDepthTracksHighWater)
{
    SimtStack s;
    s.reset(ActiveMask::all());
    EXPECT_EQ(s.maxDepth(), 1u);
    s.branch(branch(5, 7), 0, ActiveMask(1u));
    EXPECT_EQ(s.maxDepth(), 3u);
    s.exitActiveLanes(); // pop taken side
    EXPECT_EQ(s.maxDepth(), 3u);
}

} // namespace
} // namespace vtsim
