#include "bench_common.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string_view>

#include "common/log.hh"
#include "config/sim_mode.hh"
#include "service/json.hh"
#include "telemetry/profiler.hh"

namespace vtsim::bench {

namespace {

TelemetryOptions g_telemetry;

/** Strictly parse a shard-thread count: an integer >= 1 or a fatal
 *  error — "--sim-threads 0" or "--sim-threads banana" must not
 *  silently fall back to sequential (the same contract --jobs has in
 *  parallel_runner.cc). */
/** Strictly parse an --exec value: "microcode" or "legacy". */
std::string
parseExecMode(const char *text)
{
    const std::string_view mode = text;
    if (mode != "microcode" && mode != "legacy") {
        VTSIM_FATAL("invalid --exec mode '", text,
                    "' (expected 'microcode' or 'legacy')");
    }
    return std::string(mode);
}

unsigned
parseSimThreads(const char *text, const char *origin)
{
    char *end = nullptr;
    errno = 0;
    const long n = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || n < 1) {
        VTSIM_FATAL("invalid sim-thread count '", text, "' from ",
                    origin, " (expected an integer >= 1)");
    }
    return static_cast<unsigned>(n);
}

/**
 * The vtsim-profile-v1 document: where @p result's wall time went, per
 * simulation phase, as attributed by the run's SimProfiler.
 */
void
writeProfileJson(const std::string &path, const Gpu &gpu,
                 const std::string &workload_name,
                 const RunResult &result)
{
    const telemetry::SimProfiler *prof = gpu.profiler();
    if (!prof)
        return;
    using service::Json;
    Json::Array buckets;
    for (const auto &b : prof->report()) {
        Json::Object o;
        o["name"] = Json(b.name);
        o["seconds"] = Json(b.seconds);
        o["measured_ns"] = Json(b.measuredNs);
        o["calls"] = Json(b.calls);
        o["sampled"] = Json(b.sampled);
        buckets.push_back(Json(std::move(o)));
    }
    const double run_s = prof->runSeconds();
    const double attributed = prof->attributedSeconds();
    Json::Object doc;
    doc["schema"] = Json("vtsim-profile-v1");
    doc["workload"] = Json(workload_name);
    doc["cycles"] = Json(result.stats.cycles);
    doc["wall_seconds"] = Json(result.wallSeconds);
    doc["run_seconds"] = Json(run_s);
    doc["attributed_seconds"] = Json(attributed);
    doc["attributed_fraction"] =
        Json(run_s > 0.0 ? attributed / run_s : 0.0);
    doc["clock_cost_ns"] = Json(prof->clockCostNs());
    doc["executed_cycles"] = Json(prof->executedCycles());
    doc["sampled_cycles"] = Json(prof->sampledCycles());
    doc["executed_epochs"] = Json(prof->executedEpochs());
    doc["sampled_epochs"] = Json(prof->sampledEpochs());
    doc["buckets"] = Json(std::move(buckets));
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        VTSIM_FATAL("cannot open profile-json file '", path, "'");
    os << Json(std::move(doc)).dump() << '\n';
}

} // namespace

TelemetryOptions
parseTelemetryArgs(int argc, char **argv)
{
    TelemetryOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--stats-json" && i + 1 < argc)
            opts.statsJsonPath = argv[++i];
        else if (arg.substr(0, 13) == "--stats-json=")
            opts.statsJsonPath = argv[i] + 13;
        else if (arg == "--stats-interval" && i + 1 < argc)
            opts.statsInterval = std::strtoull(argv[++i], nullptr, 10);
        else if (arg.substr(0, 17) == "--stats-interval=")
            opts.statsInterval = std::strtoull(argv[i] + 17, nullptr, 10);
        else if (arg == "--trace-json" && i + 1 < argc)
            opts.traceJsonPath = argv[++i];
        else if (arg.substr(0, 13) == "--trace-json=")
            opts.traceJsonPath = argv[i] + 13;
        else if (arg == "--checkpoint" && i + 1 < argc)
            opts.checkpointPath = argv[++i];
        else if (arg.substr(0, 13) == "--checkpoint=")
            opts.checkpointPath = argv[i] + 13;
        else if (arg == "--checkpoint-every" && i + 1 < argc)
            opts.checkpointEvery = std::strtoull(argv[++i], nullptr, 10);
        else if (arg.substr(0, 19) == "--checkpoint-every=")
            opts.checkpointEvery = std::strtoull(argv[i] + 19, nullptr, 10);
        else if (arg == "--restore" && i + 1 < argc)
            opts.restorePath = argv[++i];
        else if (arg.substr(0, 10) == "--restore=")
            opts.restorePath = argv[i] + 10;
        else if (arg == "--sim-threads" && i + 1 < argc)
            opts.simThreads = parseSimThreads(argv[++i], "--sim-threads");
        else if (arg.substr(0, 14) == "--sim-threads=")
            opts.simThreads = parseSimThreads(argv[i] + 14,
                                              "--sim-threads");
        else if (arg == "--exec" && i + 1 < argc)
            opts.execMode = parseExecMode(argv[++i]);
        else if (arg.substr(0, 7) == "--exec=")
            opts.execMode = parseExecMode(argv[i] + 7);
        else if (arg == "--record-trace" && i + 1 < argc)
            opts.recordTracePath = argv[++i];
        else if (arg.substr(0, 15) == "--record-trace=")
            opts.recordTracePath = argv[i] + 15;
        else if (arg == "--replay-trace" && i + 1 < argc)
            opts.replayTracePath = argv[++i];
        else if (arg.substr(0, 15) == "--replay-trace=")
            opts.replayTracePath = argv[i] + 15;
        else if (arg == "--profile-json" && i + 1 < argc)
            opts.profileJsonPath = argv[++i];
        else if (arg.substr(0, 15) == "--profile-json=")
            opts.profileJsonPath = argv[i] + 15;
    }
    SimModeSpec mode;
    mode.recordTrace = !opts.recordTracePath.empty();
    mode.replayTrace = !opts.replayTracePath.empty();
    mode.restore = !opts.restorePath.empty();
    mode.checkpointEvery = opts.checkpointEvery;
    requireValidSimMode(mode);
    if (opts.simThreads == 0) {
        if (const char *env = std::getenv("VTSIM_SIM_THREADS"))
            opts.simThreads = parseSimThreads(env, "VTSIM_SIM_THREADS");
    }
    return opts;
}

void
setTelemetryOptions(const TelemetryOptions &opts)
{
    g_telemetry = opts;
}

const TelemetryOptions &
telemetryOptions()
{
    return g_telemetry;
}

std::string
indexedPath(const std::string &path, std::size_t index)
{
    if (index == 0)
        return path;
    const auto dot = path.rfind('.');
    const auto slash = path.rfind('/');
    const bool has_ext =
        dot != std::string::npos &&
        (slash == std::string::npos || dot > slash);
    const std::string suffix = "." + std::to_string(index);
    if (!has_ext)
        return path + suffix;
    return path.substr(0, dot) + suffix + path.substr(dot);
}

void
applyExecMode(GpuConfig &config)
{
    if (g_telemetry.execMode == "legacy")
        config.microcodeEnabled = false;
    else if (g_telemetry.execMode == "microcode")
        config.microcodeEnabled = true;
}

RunResult
runWorkload(const std::string &workload_name, const GpuConfig &config,
            std::uint32_t scale, std::size_t run_index)
{
    GpuConfig effective = config;
    applyExecMode(effective);
    Gpu gpu(effective);
    return runWorkloadOn(gpu, workload_name, scale, run_index);
}

RunResult
runWorkloadOn(Gpu &gpu, const std::string &workload_name,
              std::uint32_t scale, std::size_t run_index)
{
    RunResult result;
    result.workload = workload_name;
    // Gpu::reset() (arena reuse) falls back to sequential, so the shard
    // count must be re-applied per run; 0 leaves the default alone.
    if (g_telemetry.simThreads > 0)
        gpu.setSimThreads(g_telemetry.simThreads);
    std::ostringstream interval_series;
    if (g_telemetry.statsInterval > 0)
        gpu.enableIntervalSampler(g_telemetry.statsInterval,
                                  interval_series);
    if (!g_telemetry.traceJsonPath.empty())
        gpu.enableTraceJson(indexedPath(g_telemetry.traceJsonPath,
                                        run_index));
    if (!g_telemetry.checkpointPath.empty())
        gpu.setCheckpoint(indexedPath(g_telemetry.checkpointPath,
                                      run_index),
                          g_telemetry.checkpointEvery);
    if (!g_telemetry.profileJsonPath.empty())
        gpu.enableProfiler();

    if (!g_telemetry.replayTracePath.empty()) {
        // Trace replay drives the memory system from the recorded
        // stream: the workload never prepares inputs or executes, so
        // there is nothing to verify — only timing/cache/DRAM counters.
        if (!g_telemetry.restorePath.empty())
            gpu.restoreCheckpoint(indexedPath(g_telemetry.restorePath,
                                              run_index));
        const auto start = std::chrono::steady_clock::now();
        result.stats = gpu.replayTrace(
            indexedPath(g_telemetry.replayTracePath, run_index));
        result.wallSeconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start).count();
        result.intervalSeries = interval_series.str();
        result.verified = false;
        std::fprintf(stderr,
                     "[sim-rate] %-14s wall %8.3fs %10.1f Kcyc/s"
                     " (replay)\n",
                     workload_name.c_str(), result.wallSeconds,
                     result.kcyclesPerSec());
        if (!g_telemetry.profileJsonPath.empty())
            writeProfileJson(indexedPath(g_telemetry.profileJsonPath,
                                         run_index),
                             gpu, workload_name, result);
        return result;
    }

    auto workload = makeWorkload(workload_name, scale);
    const Kernel kernel = workload->buildKernel();

    if (!g_telemetry.recordTracePath.empty())
        gpu.enableMtraceRecord(indexedPath(g_telemetry.recordTracePath,
                                           run_index));
    LaunchParams lp;
    if (!g_telemetry.restorePath.empty()) {
        // Machine state and device memory come from the checkpoint, so
        // prepare() runs into a scratch memory instead: the workload
        // still records its buffer addresses and golden outputs for
        // verify() (the deterministic bump allocator reproduces the
        // checkpointed run's addresses), but the restored device
        // contents stay untouched.
        GlobalMemory scratch;
        workload->prepare(scratch);
        lp = gpu.restoreCheckpoint(indexedPath(g_telemetry.restorePath,
                                               run_index));
    } else {
        lp = workload->prepare(gpu.memory());
    }
    const auto start = std::chrono::steady_clock::now();
    result.stats = gpu.launch(kernel, lp);
    result.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
        result.maxSimtDepth =
            std::max(result.maxSimtDepth, gpu.sm(i).maxSimtDepthSeen());
    }
    result.intervalSeries = interval_series.str();
    // Simulator-speed row (stderr: stdout stays byte-stable across
    // hosts so figure output remains diffable).
    std::fprintf(stderr,
                 "[sim-rate] %-14s wall %8.3fs %10.1f Kcyc/s %8.2f MIPS\n",
                 workload_name.c_str(), result.wallSeconds,
                 result.kcyclesPerSec(), result.mips());
    result.verified = workload->verify(gpu.memory());
    if (!result.verified) {
        VTSIM_FATAL("workload '", workload_name,
                    "' produced wrong results — timing numbers void");
    }
    if (!g_telemetry.profileJsonPath.empty())
        writeProfileJson(indexedPath(g_telemetry.profileJsonPath,
                                     run_index),
                         gpu, workload_name, result);
    return result;
}

RunResult
runCoRunOn(Gpu &gpu, const std::vector<std::string> &workload_names,
           SharePolicy policy, std::uint32_t scale,
           std::size_t run_index)
{
    {
        SimModeSpec mode;
        mode.recordTrace = !g_telemetry.recordTracePath.empty();
        mode.replayTrace = !g_telemetry.replayTracePath.empty();
        mode.restore = !g_telemetry.restorePath.empty();
        mode.checkpointEvery = g_telemetry.checkpointEvery;
        mode.numGrids = workload_names.size();
        mode.preemptPolicy = policy == SharePolicy::Preempt;
        mode.vtEnabled = gpu.config().vtEnabled;
        requireValidSimMode(mode);
    }
    RunResult result;
    for (const std::string &name : workload_names)
        result.workload += (result.workload.empty() ? "" : "+") + name;
    if (g_telemetry.simThreads > 0)
        gpu.setSimThreads(g_telemetry.simThreads);
    std::ostringstream interval_series;
    if (g_telemetry.statsInterval > 0)
        gpu.enableIntervalSampler(g_telemetry.statsInterval,
                                  interval_series);
    if (!g_telemetry.traceJsonPath.empty())
        gpu.enableTraceJson(indexedPath(g_telemetry.traceJsonPath,
                                        run_index));
    if (!g_telemetry.checkpointPath.empty())
        gpu.setCheckpoint(indexedPath(g_telemetry.checkpointPath,
                                      run_index),
                          g_telemetry.checkpointEvery);
    if (!g_telemetry.profileJsonPath.empty())
        gpu.enableProfiler();

    std::vector<std::unique_ptr<Workload>> workloads;
    std::vector<Kernel> kernels;
    for (const std::string &name : workload_names) {
        workloads.push_back(makeWorkload(name, scale));
        kernels.push_back(workloads.back()->buildKernel());
    }
    std::vector<GridLaunch> launches;
    for (std::size_t g = 0; g < workloads.size(); ++g) {
        GridLaunch gl;
        gl.kernel = &kernels[g];
        gl.params = workloads[g]->prepare(gpu.memory());
        gl.priority = std::uint32_t(g);
        launches.push_back(std::move(gl));
    }
    const auto start = std::chrono::steady_clock::now();
    result.stats = gpu.launchConcurrent(launches, policy);
    result.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    result.grids = gpu.gridStats();
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
        result.maxSimtDepth =
            std::max(result.maxSimtDepth, gpu.sm(i).maxSimtDepthSeen());
    }
    result.intervalSeries = interval_series.str();
    std::fprintf(stderr,
                 "[sim-rate] %-14s wall %8.3fs %10.1f Kcyc/s %8.2f MIPS"
                 " (%s)\n",
                 result.workload.c_str(), result.wallSeconds,
                 result.kcyclesPerSec(), result.mips(),
                 toString(policy).c_str());
    result.verified = true;
    for (std::size_t g = 0; g < workloads.size(); ++g) {
        if (!workloads[g]->verify(gpu.memory())) {
            result.verified = false;
            VTSIM_FATAL("workload '", workload_names[g],
                        "' produced wrong results under the ",
                        toString(policy),
                        " co-run — timing numbers void");
        }
    }
    if (!g_telemetry.profileJsonPath.empty())
        writeProfileJson(indexedPath(g_telemetry.profileJsonPath,
                                     run_index),
                         gpu, result.workload, result);
    return result;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / values.size());
}

void
printHeader(const std::string &experiment_id, const std::string &title)
{
    std::printf("==== %s: %s ====\n", experiment_id.c_str(),
                title.c_str());
}

} // namespace vtsim::bench
