/**
 * @file
 * TAB-1: the simulated machine configuration, as the paper's
 * configuration table reports it — baseline and Virtual Thread variants.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("TAB-1", "simulator configuration");

    std::cout << "--- Baseline (GTX480/Fermi-class) ---\n";
    GpuConfig base = GpuConfig::fermiLike();
    base.print(std::cout);

    std::cout << "\n--- Virtual Thread machine ---\n";
    GpuConfig vt = base;
    vt.vtEnabled = true;
    vt.print(std::cout);

    std::cout << "\n--- Kepler-class variant (sensitivity) ---\n";
    GpuConfig kepler = GpuConfig::keplerLike();
    kepler.print(std::cout);
    return 0;
}
