#include "gpu/gpu.hh"

#include <algorithm>

#include "common/log.hh"
#include "gpu/stats_snapshot.hh"

namespace vtsim {

Gpu::Gpu(const GpuConfig &config)
    : config_(config),
      noc_(NocParams{config.nocLatency, config.nocFlitsPerCycle,
                     config.numSms, config.numMemPartitions,
                     config.fastForwardEnabled})
{
    config_.validate();
    for (std::uint32_t p = 0; p < config_.numMemPartitions; ++p) {
        partitions_.push_back(
            std::make_unique<MemoryPartition>(p, config_, noc_));
    }
    for (std::uint32_t s = 0; s < config_.numSms; ++s)
        sms_.push_back(std::make_unique<SmCore>(s, config_, noc_));

    noc_.setRequestSink([this](const MemRequest &req, Cycle now) {
        partitions_[partitionOf(req.lineAddr)]->receive(req, now);
    });
    noc_.setResponseSink([](const MemRequest &req, Cycle now) {
        VTSIM_ASSERT(req.sink, "response with no sink");
        req.sink->memResponse(req.token, now);
    });
    noc_.setRouter([this](Addr line_addr) { return partitionOf(line_addr); });

    // Flatten every component's stats into the telemetry registry.
    // Components have finished registering with their groups by now.
    for (auto &sm : sms_)
        sm->registerTelemetry(registry_);
    for (auto &p : partitions_)
        p->registerTelemetry(registry_);
    registry_.addGroup(noc_.stats());
}

void
Gpu::enableIntervalSampler(Cycle interval, std::ostream &os)
{
    sampler_ = std::make_unique<telemetry::IntervalSampler>(registry_,
                                                            interval, os);
}

void
Gpu::enableIntervalSampler(Cycle interval, const std::string &path)
{
    samplerFile_ = std::make_unique<std::ofstream>(path);
    if (!*samplerFile_)
        VTSIM_FATAL("cannot open stats-interval file '", path, "'");
    enableIntervalSampler(interval, *samplerFile_);
}

void
Gpu::enableTraceJson(const std::string &path)
{
    traceJson_ = std::make_unique<telemetry::TraceJsonWriter>(path);
    attachTraceJson();
}

void
Gpu::enableTraceJson(std::ostream &os)
{
    traceJson_ = std::make_unique<telemetry::TraceJsonWriter>(os);
    attachTraceJson();
}

void
Gpu::attachTraceJson()
{
    for (auto &sm : sms_) {
        traceJson_->processName(sm->id(),
                                "sm" + std::to_string(sm->id()));
        sm->setTraceJson(traceJson_.get());
    }
    for (std::uint32_t p = 0; p < partitions_.size(); ++p) {
        const std::uint32_t pid = numSms() + p;
        traceJson_->processName(pid, "dram_" + std::to_string(p));
        partitions_[p]->setTraceJson(traceJson_.get(), pid);
    }
}

void
Gpu::takeSample()
{
    // Lazy SM windows may span the boundary; settling them here splits
    // the window without changing any total (sampleN's repeated-addition
    // contract), so fast-forwarded runs sample identical values.
    for (auto &sm : sms_)
        sm->flushFastForward();
    sampler_->sample(cycle_);
}

std::uint32_t
Gpu::partitionOf(Addr line_addr) const
{
    return (line_addr / config_.l2LineSize) % config_.numMemPartitions;
}

bool
Gpu::allIdle() const
{
    for (const auto &sm : sms_)
        if (!sm->idle())
            return false;
    for (const auto &p : partitions_)
        if (!p->idle())
            return false;
    return noc_.idle();
}

void
Gpu::dumpStats(std::ostream &os)
{
    for (auto &sm : sms_)
        sm->flushFastForward();
    for (const StatGroup *group : registry_.groups())
        group->dump(os);
}

void
Gpu::flushCaches()
{
    for (auto &sm : sms_)
        sm->flushCaches();
    for (auto &p : partitions_)
        p->flushCaches();
}

KernelStats
Gpu::launch(const Kernel &kernel, const LaunchParams &launch)
{
    if (launch.numCtas() == 0)
        VTSIM_FATAL("empty grid");
    if (launch.threadsPerCta() == 0)
        VTSIM_FATAL("empty CTA");

    CtaDispatcher dispatcher(launch);
    for (auto &sm : sms_)
        sm->launchKernel(kernel, launch, gmem_);

    // Snapshot counters so stats are per-launch deltas.
    const StatsSnapshot before = StatsSnapshot::capture(registry_);

    const auto total_issued = [this] {
        std::uint64_t total = 0;
        for (const auto &sm : sms_)
            total += sm->instructionsIssued();
        return total;
    };

    const Cycle start = cycle_;
    const Cycle deadline = start + config_.maxCycles;
    if (sampler_)
        sampler_->beginLaunch(start);
    while (true) {
        // CTA work distribution: one CTA per SM per cycle, round-robin.
        bool admitted = false;
        for (auto &sm : sms_) {
            if (dispatcher.hasWork() && sm->canAdmitCta()) {
                sm->admitCta(dispatcher.next(), cycle_);
                admitted = true;
            }
        }

        const std::uint64_t issued_before = total_issued();
        noc_.tick(cycle_);
        for (auto &p : partitions_)
            p->tick(cycle_);
        for (auto &sm : sms_)
            sm->tick(cycle_);

        ++cycle_;
        if (sampler_ && cycle_ == sampler_->nextSampleAt())
            takeSample();
        if (!dispatcher.hasWork() && allIdle())
            break;
        if (cycle_ >= deadline) {
            VTSIM_FATAL("watchdog: kernel '", kernel.name(),
                        "' exceeded ", config_.maxCycles, " cycles");
        }

        // Event-horizon fast-forward: when this cycle did nothing and
        // the next admission/issue/completion provably lies in the
        // future, jump straight to it, bulk-replicating the per-cycle
        // accounting the skipped empty ticks would have done. Every
        // statistic is bit-identical to the naive loop's.
        if (!config_.fastForwardEnabled)
            continue;
        if (admitted || total_issued() != issued_before)
            continue; // A busy cycle is never at an event-free horizon.
        if (dispatcher.hasWork()) {
            bool can_admit = false;
            for (const auto &sm : sms_)
                can_admit = can_admit || sm->canAdmitCta();
            if (can_admit)
                continue; // The next iteration admits a CTA.
        }
        Cycle horizon = noc_.nextEventCycle(cycle_);
        for (const auto &p : partitions_)
            horizon = std::min(horizon, p->nextEventCycle(cycle_));
        for (const auto &sm : sms_)
            horizon = std::min(horizon, sm->nextEventCycle(cycle_));
        horizon = std::min(horizon, deadline);
        // Sample boundaries are scheduled wakeups: never jump past one,
        // so fast-forwarded runs sample at exactly the same cycles.
        if (sampler_)
            horizon = std::min(horizon, sampler_->nextSampleAt());
        if (horizon <= cycle_)
            continue;
        const std::uint64_t skipped = horizon - cycle_;
        for (auto &sm : sms_)
            sm->fastForwardIdle(cycle_, skipped);
        fastForwardedCycles_ += skipped;
        cycle_ = horizon;
        if (cycle_ >= deadline) {
            VTSIM_FATAL("watchdog: kernel '", kernel.name(),
                        "' exceeded ", config_.maxCycles, " cycles");
        }
        if (sampler_ && cycle_ == sampler_->nextSampleAt())
            takeSample();
    }

    // Settle lazily skipped per-SM ticks before reading any statistic.
    for (auto &sm : sms_)
        sm->flushFastForward();
    if (sampler_)
        sampler_->finalSample(cycle_);

    KernelStats stats;
    stats.cycles = cycle_ - start;
    StatsSnapshot::capture(registry_).delta(before, registry_, stats);

    VTSIM_ASSERT(stats.ctasCompleted == launch.numCtas(),
                 "CTA completion mismatch: ", stats.ctasCompleted, " of ",
                 launch.numCtas());
    stats.ipc = stats.cycles
                    ? double(stats.warpInstructions) / stats.cycles
                    : 0.0;
    return stats;
}

} // namespace vtsim
