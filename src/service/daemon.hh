/**
 * @file
 * The vtsimd network front end: an NDJSON request server in front of a
 * JobService (see src/service/protocol.hh for the wire format), built
 * on the fabric transport (src/fabric/line_server.hh) so the same
 * daemon serves its classic Unix-domain socket and — when joined to a
 * coordinator fleet — a TCP listener with bearer-token auth. One
 * accept loop, one thread per connection; a connection carries any
 * number of request lines, each answered with exactly one reply line.
 *
 * Robustness contract: nothing a client sends may take the daemon
 * down. Malformed JSON, unknown ops, oversized request lines and
 * mid-request disconnects are answered with {"ok":false,...} (or the
 * connection is just dropped) while the accept loop keeps serving. The
 * "shutdown" op is the only way a client stops the daemon, and it
 * drains: serve() returns so the caller can JobService::shutdown() and
 * write the service stats JSON.
 *
 * On top of the classic ops the daemon implements the coordinator's
 * steal/migrate half of the protocol: yank, ckpt_read, release on the
 * outgoing side; ckpt_begin, ckpt_chunk and submit with resume_xfer on
 * the incoming side (staged images land in the spool directory).
 */

#ifndef VTSIM_SERVICE_DAEMON_HH
#define VTSIM_SERVICE_DAEMON_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "fabric/line_server.hh"
#include "service/protocol.hh"
#include "service/service.hh"

namespace vtsim::service {

struct DaemonConfig
{
    /** Unix-domain socket path; empty disables that listener. */
    std::string socketPath;
    /** TCP listener (vtsimd --listen-tcp); port 0 = ephemeral. */
    fabric::HostPort tcp;
    bool tcpEnabled = false;
    /** Bearer token required on every request line when non-empty. */
    std::string authToken;
};

class Daemon
{
  public:
    /** Longest accepted request line (see fabric::LineServer). */
    static constexpr std::size_t kMaxLineBytes =
        fabric::LineServer::kMaxLineBytes;

    /** Classic single-listener daemon on @p socket_path. */
    Daemon(JobService &service, std::string socket_path);

    Daemon(JobService &service, DaemonConfig config);

    /**
     * Bind and listen on every configured endpoint. Throws
     * std::runtime_error (fabric::TransportError) on failure.
     */
    void start();

    /**
     * Accept-and-serve until requestStop() — typically triggered by a
     * client's "shutdown" op. Joins the connection threads before
     * returning, so replies in flight finish.
     */
    void serve();

    /** Ask serve() to return. Safe from signal handlers and
     *  connection threads. */
    void requestStop();

    const std::string &socketPath() const { return server_.unixPath(); }

    /** After start(): the TCP port actually bound (0 without TCP). */
    std::uint16_t boundTcpPort() const { return server_.boundTcpPort(); }

  private:
    /** Handle one request line; false closes the connection. */
    bool handleLine(int fd, const std::string &line);
    bool handleSubmit(int fd, Request &req);
    bool handleYank(int fd, const Request &req);
    bool handleCkptRead(int fd, const Request &req);
    bool handleCkptBegin(int fd);
    bool handleCkptChunk(int fd, const Request &req);

    JobService &service_;
    fabric::LineServer server_;

    /** Staged incoming checkpoint transfers (ckpt_begin/ckpt_chunk). */
    struct Xfer
    {
        std::string path;
        std::uint64_t bytes = 0;
    };
    std::mutex xferMu_;
    std::map<std::uint64_t, Xfer> xfers_;
    std::uint64_t nextXfer_ = 1;
};

} // namespace vtsim::service

#endif // VTSIM_SERVICE_DAEMON_HH
