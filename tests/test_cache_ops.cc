/**
 * @file
 * Tests for the cache-operator extension: ldg.cg streaming loads and
 * the global l1BypassGlobalLoads policy knob.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

TEST(CacheOps, AssemblerParsesStreamingLoads)
{
    const Kernel k = assemble(R"(
.kernel t
    ldg r1, [r0]
    ldg.cg r2, [r0+4]
    exit
)");
    EXPECT_EQ(k.at(0).cacheOp, CacheOp::CacheAll);
    EXPECT_EQ(k.at(1).cacheOp, CacheOp::Streaming);
    EXPECT_EQ(k.at(1).op, Opcode::LDG);
}

TEST(CacheOps, DisassemblerRoundTripsSuffix)
{
    const Kernel k = assemble(R"(
.kernel t
    ldg.cg r1, [r0+8]
    exit
)");
    const std::string text = disassemble(k);
    EXPECT_NE(text.find("ldg.cg r1, [r0+8]"), std::string::npos);
    const Kernel again = assemble(text);
    EXPECT_EQ(again.at(0).cacheOp, CacheOp::Streaming);
}

TEST(CacheOps, BuilderDefaultsToCacheAll)
{
    KernelBuilder kb("t");
    kb.ldg(1, 0);
    kb.ldg(2, 0, 4, CacheOp::Streaming);
    kb.exit();
    const Kernel k = kb.build();
    EXPECT_EQ(k.at(0).cacheOp, CacheOp::CacheAll);
    EXPECT_EQ(k.at(1).cacheOp, CacheOp::Streaming);
}

/** Kernel loading in[gid] twice with the given mnemonic. */
Kernel
doubleLoadKernel(const char *ld)
{
    std::string src = R"(
.kernel dbl
    ldp r0, 0
    ldp r1, 1
    s2r r2, ctaid.x
    s2r r3, ntid.x
    s2r r4, tid.x
    imad r5, r2, r3, r4
    shl r5, r5, 2
    iadd r5, r5, r0
    LD r6, [r5]
    LD r7, [r5]
    iadd r6, r6, r7
    isub r5, r5, r0
    iadd r5, r5, r1
    stg [r5], r6
    exit
)";
    std::string out;
    std::size_t pos = 0, found;
    while ((found = src.find("LD ", pos)) != std::string::npos) {
        out += src.substr(pos, found - pos);
        out += ld;
        out += ' ';
        pos = found + 3;
    }
    out += src.substr(pos);
    return assemble(out);
}

TEST(CacheOps, StreamingLoadsNeverTouchL1)
{
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 1;
    cfg.numMemPartitions = 1;
    Gpu gpu(cfg);
    const Kernel k = doubleLoadKernel("ldg.cg");
    const std::uint32_t n = 128;
    const Addr in = gpu.memory().alloc(n * 4);
    const Addr out = gpu.memory().alloc(n * 4);
    for (std::uint32_t i = 0; i < n; ++i)
        gpu.memory().write32(in + 4 * i, i);
    LaunchParams lp;
    lp.cta = Dim3(n);
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(in), std::uint32_t(out)};
    gpu.launch(k, lp);
    EXPECT_EQ(gpu.sm(0).ldst().l1().hits(), 0u);
    EXPECT_EQ(gpu.sm(0).ldst().l1().misses(), 0u);
    EXPECT_GT(gpu.sm(0).ldst().stats().counterValue("bypass_txns"), 0u);
    for (std::uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(gpu.memory().read32(out + 4 * i), 2 * i);
}

TEST(CacheOps, DefaultLoadsHitL1OnReuse)
{
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 1;
    cfg.numMemPartitions = 1;
    Gpu gpu(cfg);
    const Kernel k = doubleLoadKernel("ldg");
    const std::uint32_t n = 128;
    const Addr in = gpu.memory().alloc(n * 4);
    const Addr out = gpu.memory().alloc(n * 4);
    LaunchParams lp;
    lp.cta = Dim3(n);
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(in), std::uint32_t(out)};
    gpu.launch(k, lp);
    // The second load of each line hits (or at least merges); some L1
    // activity must exist.
    EXPECT_GT(gpu.sm(0).ldst().l1().hits() +
                  gpu.sm(0).ldst().l1().misses(), 0u);
    EXPECT_EQ(gpu.sm(0).ldst().stats().counterValue("bypass_txns"), 0u);
}

TEST(CacheOps, GlobalBypassKnobForcesAllLoadsAround)
{
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 1;
    cfg.numMemPartitions = 1;
    cfg.l1BypassGlobalLoads = true;
    Gpu gpu(cfg);
    const Kernel k = doubleLoadKernel("ldg"); // default op, policy bypass
    const std::uint32_t n = 128;
    const Addr in = gpu.memory().alloc(n * 4);
    const Addr out = gpu.memory().alloc(n * 4);
    LaunchParams lp;
    lp.cta = Dim3(n);
    lp.grid = Dim3(1);
    lp.params = {std::uint32_t(in), std::uint32_t(out)};
    gpu.launch(k, lp);
    EXPECT_EQ(gpu.sm(0).ldst().l1().hits(), 0u);
    EXPECT_EQ(gpu.sm(0).ldst().l1().misses(), 0u);
}

TEST(CacheOps, ResultsIdenticalWithAndWithoutBypass)
{
    for (const char *name : {"vecadd", "spmv", "reduce"}) {
        GpuConfig cfg = test::smallVtConfig();
        cfg.l1BypassGlobalLoads = true;
        auto wl = makeWorkload(name, 0);
        const Kernel k = wl->buildKernel();
        Gpu gpu(cfg);
        const LaunchParams lp = wl->prepare(gpu.memory());
        gpu.launch(k, lp);
        EXPECT_TRUE(wl->verify(gpu.memory())) << name;
    }
}

} // namespace
} // namespace vtsim
