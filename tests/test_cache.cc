/**
 * @file
 * Unit tests for the set-associative cache with MSHRs.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mem/cache.hh"

namespace vtsim {
namespace {

CacheParams
tinyParams()
{
    CacheParams p;
    p.name = "t";
    p.size = 1024;     // 2 sets x 4 ways x 128B
    p.assoc = 4;
    p.lineSize = 128;
    p.numMshrs = 2;
    p.mshrTargets = 2;
    return p;
}

MemRequest
load(Addr line, std::uint64_t token = 0)
{
    MemRequest r;
    r.lineAddr = line;
    r.token = token;
    return r;
}

TEST(Cache, MissThenFillThenHit)
{
    Cache c(tinyParams());
    EXPECT_EQ(c.access(load(0)), CacheOutcome::MissNew);
    EXPECT_FALSE(c.probe(0));
    const auto targets = c.fill(0).targets;
    EXPECT_EQ(targets.size(), 1u);
    EXPECT_TRUE(c.probe(0));
    EXPECT_EQ(c.access(load(0)), CacheOutcome::Hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, MshrMergeReturnsAllTargets)
{
    Cache c(tinyParams());
    EXPECT_EQ(c.access(load(0, 1)), CacheOutcome::MissNew);
    EXPECT_EQ(c.access(load(0, 2)), CacheOutcome::MissMerged);
    const auto targets = c.fill(0).targets;
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0].token, 1u);
    EXPECT_EQ(targets[1].token, 2u);
}

TEST(Cache, RejectWhenMshrsFull)
{
    Cache c(tinyParams());
    EXPECT_EQ(c.access(load(0)), CacheOutcome::MissNew);
    EXPECT_EQ(c.access(load(128)), CacheOutcome::MissNew);
    EXPECT_EQ(c.access(load(256)), CacheOutcome::RejectMshrFull);
    EXPECT_EQ(c.mshrsInUse(), 2u);
    c.fill(0);
    EXPECT_EQ(c.access(load(256)), CacheOutcome::MissNew);
}

TEST(Cache, RejectWhenTargetsFull)
{
    Cache c(tinyParams());
    EXPECT_EQ(c.access(load(0, 1)), CacheOutcome::MissNew);
    EXPECT_EQ(c.access(load(0, 2)), CacheOutcome::MissMerged);
    EXPECT_EQ(c.access(load(0, 3)), CacheOutcome::RejectTargets);
}

TEST(Cache, LruEviction)
{
    Cache c(tinyParams());
    // Set 0 holds lines 0, 256, 512, ... (2 sets, 128B lines).
    for (Addr line : {0u, 256u, 512u, 768u}) {
        c.access(load(line));
        c.fill(line);
    }
    // Touch line 0 so line 256 becomes LRU.
    EXPECT_EQ(c.access(load(0)), CacheOutcome::Hit);
    c.access(load(1024));
    c.fill(1024);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(256)); // evicted
    EXPECT_TRUE(c.probe(512));
    EXPECT_TRUE(c.probe(1024));
}

TEST(Cache, SetsAreIndependent)
{
    Cache c(tinyParams());
    // Lines 0 and 128 land in different sets.
    c.access(load(0));
    c.fill(0);
    c.access(load(128));
    c.fill(128);
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(128));
    EXPECT_EQ(c.numSets(), 2u);
}

TEST(Cache, StoreAccessNeverAllocates)
{
    Cache c(tinyParams());
    EXPECT_FALSE(c.storeAccess(0));
    EXPECT_FALSE(c.probe(0));
    c.access(load(0));
    c.fill(0);
    EXPECT_TRUE(c.storeAccess(0));
}

TEST(Cache, StoreTouchKeepsLineHot)
{
    Cache c(tinyParams());
    for (Addr line : {0u, 256u, 512u, 768u}) {
        c.access(load(line));
        c.fill(line);
    }
    c.storeAccess(0); // refresh line 0's LRU position
    c.access(load(1024));
    c.fill(1024);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(256));
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(tinyParams());
    c.access(load(0));
    c.fill(0);
    c.flush();
    EXPECT_FALSE(c.probe(0));
    EXPECT_EQ(c.access(load(0)), CacheOutcome::MissNew);
}

TEST(Cache, MergesCountedSeparatelyFromMisses)
{
    Cache c(tinyParams());
    c.access(load(0, 1));
    c.access(load(0, 2));
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.stats().counterValue("mshr_merges"), 1u);
    EXPECT_EQ(c.stats().counterValue("mshr_rejects"), 0u);
}

/** Parameterised sweep over geometries: fill the whole cache, everything
 *  present; one more set-conflicting line evicts exactly one. */
struct Geometry
{
    std::uint32_t size, assoc, line;
};

class CacheGeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometrySweep, FillAllThenEvictOne)
{
    const Geometry g = GetParam();
    CacheParams p;
    p.size = g.size;
    p.assoc = g.assoc;
    p.lineSize = g.line;
    p.numMshrs = 4096;
    p.mshrTargets = 4;
    Cache c(p);
    const std::uint32_t lines = g.size / g.line;
    for (std::uint32_t i = 0; i < lines; ++i) {
        ASSERT_EQ(c.access(load(Addr(i) * g.line)), CacheOutcome::MissNew);
        c.fill(Addr(i) * g.line);
    }
    for (std::uint32_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.probe(Addr(i) * g.line));
    // One more line aliasing set 0 evicts exactly one resident line.
    const Addr extra = Addr(lines) * g.line;
    c.access(load(extra));
    c.fill(extra);
    std::uint32_t present = 0;
    for (std::uint32_t i = 0; i <= lines; ++i)
        present += c.probe(Addr(i) * g.line);
    EXPECT_EQ(present, lines);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometrySweep,
    ::testing::Values(Geometry{1024, 1, 128}, Geometry{1024, 4, 64},
                      Geometry{16384, 4, 128}, Geometry{32768, 8, 128},
                      Geometry{4096, 2, 32}));

} // namespace
} // namespace vtsim
