#include "func/global_memory.hh"

#include <algorithm>

#include "common/log.hh"

namespace vtsim {

std::uint8_t
GlobalMemory::read8(Addr addr) const
{
    const auto it = pages_.find(addr / pageSize);
    if (it == pages_.end())
        return 0;
    return it->second[addr % pageSize];
}

void
GlobalMemory::write8(Addr addr, std::uint8_t value)
{
    if (deferWrites_)
        return;
    auto &page = pages_[addr / pageSize];
    if (page.empty())
        page.resize(pageSize, 0);
    page[addr % pageSize] = value;
}

std::uint32_t
GlobalMemory::read32(Addr addr) const
{
    // Fast path: all four (little-endian) bytes on one page — a single
    // page lookup instead of four, and usually no lookup at all thanks
    // to the one-entry memo.
    const std::uint32_t off = addr % pageSize;
    if (off + 4 <= pageSize) {
        const std::uint64_t page = addr / pageSize;
        const std::uint8_t *p;
        if (page == memoPage_) {
            p = memoData_ + off;
        } else {
            const auto it = pages_.find(page);
            if (it == pages_.end())
                return 0;
            // pages_ values are not const objects; the cast lets the
            // mutable memo also serve the non-const write32 path.
            auto *data = const_cast<std::uint8_t *>(it->second.data());
            if (!deferWrites_) {
                memoPage_ = page;
                memoData_ = data;
            }
            p = data + off;
        }
        return static_cast<std::uint32_t>(p[0]) |
               static_cast<std::uint32_t>(p[1]) << 8 |
               static_cast<std::uint32_t>(p[2]) << 16 |
               static_cast<std::uint32_t>(p[3]) << 24;
    }
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | read8(addr + i);
    return v;
}

void
GlobalMemory::write32(Addr addr, std::uint32_t value)
{
    if (deferWrites_)
        return;
    const std::uint32_t off = addr % pageSize;
    if (off + 4 <= pageSize) {
        const std::uint64_t page = addr / pageSize;
        std::uint8_t *p;
        if (page == memoPage_) {
            p = memoData_ + off;
        } else {
            auto &data = pages_[page];
            if (data.empty())
                data.resize(pageSize, 0);
            memoPage_ = page;
            memoData_ = data.data();
            p = data.data() + off;
        }
        p[0] = value & 0xff;
        p[1] = (value >> 8) & 0xff;
        p[2] = (value >> 16) & 0xff;
        p[3] = (value >> 24) & 0xff;
        return;
    }
    for (int i = 0; i < 4; ++i)
        write8(addr + i, (value >> (8 * i)) & 0xff);
}

void
GlobalMemory::writeWords(Addr addr, const std::vector<std::uint32_t> &words)
{
    for (std::size_t i = 0; i < words.size(); ++i)
        write32(addr + 4 * i, words[i]);
}

void
GlobalMemory::writeFloats(Addr addr, const std::vector<float> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        writeF32(addr + 4 * i, values[i]);
}

std::vector<std::uint32_t>
GlobalMemory::readWords(Addr addr, std::uint64_t count) const
{
    std::vector<std::uint32_t> out(count);
    for (std::uint64_t i = 0; i < count; ++i)
        out[i] = read32(addr + 4 * i);
    return out;
}

std::vector<float>
GlobalMemory::readFloats(Addr addr, std::uint64_t count) const
{
    std::vector<float> out(count);
    for (std::uint64_t i = 0; i < count; ++i)
        out[i] = readF32(addr + 4 * i);
    return out;
}

Addr
GlobalMemory::alloc(std::uint64_t bytes, std::uint64_t align)
{
    VTSIM_ASSERT(align != 0 && isPowerOfTwo(align), "bad alignment");
    allocNext_ = roundUp(allocNext_, align);
    const Addr base = allocNext_;
    allocNext_ += bytes ? bytes : 1;
    return base;
}

void
GlobalMemory::save(Serializer &ser) const
{
    const std::size_t sec = ser.beginSection("gmem");
    ser.put(allocNext_);
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    for (const auto &[page, data] : pages_)
        keys.push_back(page);
    std::sort(keys.begin(), keys.end());
    ser.put<std::uint64_t>(keys.size());
    for (std::uint64_t page : keys) {
        ser.put(page);
        ser.putBytes(pages_.at(page).data(), pageSize);
    }
    ser.endSection(sec);
}

void
GlobalMemory::restore(Deserializer &des)
{
    des.beginSection("gmem");
    des.get(allocNext_);
    pages_.clear();
    memoPage_ = noPage;
    memoData_ = nullptr;
    const auto count = des.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto page = des.get<std::uint64_t>();
        auto &data = pages_[page];
        data.resize(pageSize);
        des.getBytes(data.data(), pageSize);
    }
    des.endSection();
}

} // namespace vtsim
