#include "sim/serializer.hh"

namespace vtsim {

namespace {

bool
hostIsLittleEndian()
{
    const std::uint32_t probe = 1;
    std::uint8_t first;
    std::memcpy(&first, &probe, 1);
    return first == 1;
}

} // namespace

Serializer::Serializer()
{
    VTSIM_ASSERT(hostIsLittleEndian(),
                 "vtsim checkpoints are little-endian only");
}

void
Serializer::putBytes(const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    buf_.insert(buf_.end(), b, b + n);
}

void
Serializer::putString(const std::string &s)
{
    put<std::uint64_t>(s.size());
    putBytes(s.data(), s.size());
}

std::size_t
Serializer::beginSection(const char tag[5])
{
    putBytes(tag, 4);
    const std::size_t handle = buf_.size();
    put<std::uint32_t>(0); // length, patched by endSection
    return handle;
}

void
Serializer::endSection(std::size_t handle)
{
    VTSIM_ASSERT(handle + 4 <= buf_.size(), "bad section handle");
    const std::size_t body = buf_.size() - (handle + 4);
    VTSIM_ASSERT(body <= UINT32_MAX, "checkpoint section too large");
    const std::uint32_t len = static_cast<std::uint32_t>(body);
    std::memcpy(buf_.data() + handle, &len, sizeof(len));
}

Deserializer::Deserializer(const std::uint8_t *data, std::size_t size)
    : data_(data), size_(size)
{
    VTSIM_ASSERT(hostIsLittleEndian(),
                 "vtsim checkpoints are little-endian only");
}

Deserializer::Deserializer(const std::vector<std::uint8_t> &buf)
    : Deserializer(buf.data(), buf.size())
{
}

void
Deserializer::getBytes(void *p, std::size_t n)
{
    VTSIM_ASSERT(pos_ + n <= size_,
                 "checkpoint truncated: need ", n, " bytes at offset ", pos_,
                 " of ", size_);
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
}

std::string
Deserializer::getString()
{
    const std::uint64_t n = get<std::uint64_t>();
    VTSIM_ASSERT(n <= remaining(), "checkpoint string overruns buffer");
    std::string s(n, '\0');
    if (n)
        getBytes(s.data(), n);
    return s;
}

void
Deserializer::beginSection(const char tag[5])
{
    char got[5] = {0, 0, 0, 0, 0};
    getBytes(got, 4);
    VTSIM_ASSERT(std::memcmp(got, tag, 4) == 0,
                 "checkpoint section mismatch: expected '", tag, "' got '",
                 got, "'");
    const std::uint32_t len = get<std::uint32_t>();
    VTSIM_ASSERT(len <= remaining(),
                 "checkpoint section '", tag, "' overruns buffer");
    sectionEnds_.push_back(pos_ + len);
}

void
Deserializer::endSection()
{
    VTSIM_ASSERT(!sectionEnds_.empty(), "endSection without beginSection");
    const std::size_t expected = sectionEnds_.back();
    sectionEnds_.pop_back();
    VTSIM_ASSERT(pos_ == expected,
                 "checkpoint section size mismatch: consumed through ", pos_,
                 " expected ", expected);
}

} // namespace vtsim
