/**
 * @file
 * Unit tests for CTA barrier bookkeeping.
 */

#include <gtest/gtest.h>

#include "sm/barrier_manager.hh"

namespace vtsim {
namespace {

TEST(Barrier, ReleaseWhenAllAlivArrive)
{
    BarrierManager bm;
    bm.ctaLaunched(0);
    bm.arrive(0, 0);
    bm.arrive(0, 1);
    EXPECT_FALSE(bm.shouldRelease(0, 3));
    bm.arrive(0, 2);
    EXPECT_TRUE(bm.shouldRelease(0, 3));
    const auto released = bm.release(0);
    EXPECT_EQ(released.size(), 3u);
    EXPECT_EQ(bm.arrivedCount(0), 0u);
    bm.ctaFinished(0);
}

TEST(Barrier, WarpExitLowersThreshold)
{
    BarrierManager bm;
    bm.ctaLaunched(5);
    bm.arrive(5, 0);
    // Initially 3 alive: not releasable. One warp exits -> 2 alive.
    EXPECT_FALSE(bm.shouldRelease(5, 3));
    bm.arrive(5, 1);
    EXPECT_TRUE(bm.shouldRelease(5, 2));
    bm.release(5);
    bm.ctaFinished(5);
}

TEST(Barrier, NoArrivalsNeverReleases)
{
    BarrierManager bm;
    bm.ctaLaunched(1);
    EXPECT_FALSE(bm.shouldRelease(1, 0));
    bm.ctaFinished(1);
}

TEST(Barrier, ReusableAcrossIterations)
{
    BarrierManager bm;
    bm.ctaLaunched(0);
    for (int iter = 0; iter < 5; ++iter) {
        bm.arrive(0, 0);
        bm.arrive(0, 1);
        ASSERT_TRUE(bm.shouldRelease(0, 2));
        EXPECT_EQ(bm.release(0).size(), 2u);
    }
    bm.ctaFinished(0);
}

TEST(Barrier, IndependentCtas)
{
    BarrierManager bm;
    bm.ctaLaunched(0);
    bm.ctaLaunched(1);
    bm.arrive(0, 0);
    EXPECT_EQ(bm.arrivedCount(0), 1u);
    EXPECT_EQ(bm.arrivedCount(1), 0u);
    EXPECT_TRUE(bm.shouldRelease(0, 1));
    EXPECT_FALSE(bm.shouldRelease(1, 1));
    bm.release(0);
    bm.ctaFinished(0);
    bm.ctaFinished(1);
}

TEST(BarrierDeath, DoubleArrivalPanics)
{
    BarrierManager bm;
    bm.ctaLaunched(0);
    bm.arrive(0, 3);
    EXPECT_DEATH(bm.arrive(0, 3), "double barrier arrival");
}

TEST(BarrierDeath, FinishWithParkedWarpsPanics)
{
    BarrierManager bm;
    bm.ctaLaunched(0);
    bm.arrive(0, 0);
    EXPECT_DEATH(bm.ctaFinished(0), "parked");
}

TEST(BarrierDeath, UntrackedCtaPanics)
{
    BarrierManager bm;
    EXPECT_DEATH(bm.arrive(9, 0), "untracked");
}

} // namespace
} // namespace vtsim
