/**
 * @file
 * The SimComponent lifecycle end to end: Gpu::reset() arena reuse,
 * checkpoint/restore (vtsim-ckpt-v1) resuming bit-identically, and the
 * verifyHorizon oracle. The overarching invariant is the same one the
 * fast-forward tests enforce: no lifecycle operation — reset, a
 * checkpoint write mid-run, a restore — may change a single statistic
 * relative to the plain uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.hh"
#include "gpu/gpu.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

namespace vtsim {
namespace {

using test::smallConfig;

/** Every field of KernelStats, bit for bit. */
void
expectIdenticalStats(const KernelStats &a, const KernelStats &b,
                     const std::string &context)
{
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.warpInstructions, b.warpInstructions) << context;
    EXPECT_EQ(a.threadInstructions, b.threadInstructions) << context;
    EXPECT_EQ(a.ctasCompleted, b.ctasCompleted) << context;
    EXPECT_EQ(a.ipc, b.ipc) << context;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << context;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << context;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << context;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << context;
    EXPECT_EQ(a.dramRowHits, b.dramRowHits) << context;
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << context;
    EXPECT_EQ(a.dramBytes, b.dramBytes) << context;
    EXPECT_EQ(a.swapOuts, b.swapOuts) << context;
    EXPECT_EQ(a.swapIns, b.swapIns) << context;
    EXPECT_EQ(a.stalls.issued, b.stalls.issued) << context;
    EXPECT_EQ(a.stalls.memStall, b.stalls.memStall) << context;
    EXPECT_EQ(a.stalls.shortStall, b.stalls.shortStall) << context;
    EXPECT_EQ(a.stalls.barrierStall, b.stalls.barrierStall) << context;
    EXPECT_EQ(a.stalls.swapStall, b.stalls.swapStall) << context;
    EXPECT_EQ(a.stalls.idle, b.stalls.idle) << context;
}

/** Build, prepare and launch @p name on @p gpu (fresh or reset). */
KernelStats
launchOn(Gpu &gpu, const std::string &name)
{
    auto wl = makeWorkload(name, 0);
    const Kernel k = wl->buildKernel();
    const LaunchParams lp = wl->prepare(gpu.memory());
    const KernelStats stats = gpu.launch(k, lp);
    EXPECT_TRUE(wl->verify(gpu.memory())) << name;
    return stats;
}

std::string
tempPath(const std::string &stem)
{
    return testing::TempDir() + stem;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// ---------------------------------------------------------------------------
// Gpu::reset(): one arena, many runs, all bit-identical to fresh Gpus.
// ---------------------------------------------------------------------------

TEST(GpuReset, ReusedArenaMatchesFreshGpu)
{
    GpuConfig base = smallConfig();
    base.fastForwardEnabled = true;
    GpuConfig vt = base;
    vt.vtEnabled = true;
    GpuConfig throttled = base;
    throttled.throttleEnabled = true;
    const struct
    {
        const char *tag;
        GpuConfig cfg;
    } machines[] = {{"baseline", base}, {"vt", vt},
                    {"throttle", throttled}};

    for (const auto &m : machines) {
        Gpu fresh(m.cfg);
        const KernelStats expect = launchOn(fresh, "bfs");

        Gpu arena(m.cfg);
        const KernelStats first = launchOn(arena, "bfs");
        expectIdenticalStats(expect, first,
                             std::string(m.tag) + "/first-use");

        // Contaminate the arena with a different workload, then reset:
        // the rerun must not see any residue (caches, stats, RNG-free
        // queues, VT state).
        arena.reset();
        launchOn(arena, "vecadd");
        arena.reset();
        const KernelStats rerun = launchOn(arena, "bfs");
        expectIdenticalStats(expect, rerun,
                             std::string(m.tag) + "/reset-reuse");
        EXPECT_EQ(arena.totalCycles(), fresh.totalCycles()) << m.tag;
    }
}

TEST(GpuReset, ClearsTelemetrySinks)
{
    GpuConfig cfg = smallConfig();
    Gpu gpu(cfg);
    std::ostringstream series, trace;
    gpu.enableIntervalSampler(100, series);
    gpu.enableTraceJson(trace);
    launchOn(gpu, "vecadd");
    EXPECT_FALSE(series.str().empty());

    // After reset, the old sinks must not receive another byte.
    gpu.reset();
    const std::string series_before = series.str();
    const std::string trace_before = trace.str();
    launchOn(gpu, "vecadd");
    EXPECT_EQ(series.str(), series_before);
    EXPECT_EQ(trace.str(), trace_before);
}

// ---------------------------------------------------------------------------
// Checkpoint/restore: resume finishes bit-identically.
// ---------------------------------------------------------------------------

TEST(Checkpoint, RestoreResumesBitIdentically)
{
    GpuConfig cfg = smallConfig();
    cfg.fastForwardEnabled = true;
    for (const bool vt : {false, true}) {
        cfg.vtEnabled = vt;
        const std::string tag = vt ? "vt" : "baseline";
        const std::string mid_path = tempPath("ckpt_mid_" + tag);
        const std::string end_a = tempPath("ckpt_end_a_" + tag);
        const std::string end_b = tempPath("ckpt_end_b_" + tag);

        // Calibrate boundaries to the workload's actual length.
        Gpu probe(cfg);
        const Cycle total = launchOn(probe, "bfs").cycles;
        ASSERT_GT(total, 10u) << tag;
        const Cycle every = total / 2;
        const Cycle interval = total / 7 ? total / 7 : 1;

        // Uninterrupted reference, with a final-state checkpoint.
        std::ostringstream series_u;
        Gpu u(cfg);
        u.enableIntervalSampler(interval, series_u);
        u.setCheckpoint(end_a, 0);
        const KernelStats stats_u = launchOn(u, "bfs");

        // Checkpointing run: writes (and overwrites) mid_path at every
        // boundary; writing checkpoints must perturb nothing.
        std::ostringstream series_c;
        Gpu c(cfg);
        c.enableIntervalSampler(interval, series_c);
        c.setCheckpoint(mid_path, every);
        const KernelStats stats_c = launchOn(c, "bfs");
        expectIdenticalStats(stats_u, stats_c, tag + "/checkpointing");
        EXPECT_EQ(series_u.str(), series_c.str()) << tag;

        // Restore the last mid-kernel checkpoint into a fresh Gpu and
        // finish: KernelStats are whole-launch and bit-identical.
        auto wl = makeWorkload("bfs", 0);
        const Kernel k = wl->buildKernel();
        GlobalMemory scratch; // Teaches wl its addresses for verify().
        wl->prepare(scratch);
        std::ostringstream series_r;
        Gpu r(cfg);
        r.enableIntervalSampler(interval, series_r);
        const LaunchParams lp = r.restoreCheckpoint(mid_path);
        r.setCheckpoint(end_b, 0);
        const KernelStats stats_r = r.launch(k, lp);
        EXPECT_TRUE(wl->verify(r.memory())) << tag;
        expectIdenticalStats(stats_u, stats_r, tag + "/resumed");

        // The resumed run emits exactly the tail of the uninterrupted
        // interval series (sampler baselines travel in the checkpoint).
        const std::string full = series_u.str();
        const std::string restored_tail = series_r.str();
        ASSERT_LE(restored_tail.size(), full.size()) << tag;
        EXPECT_FALSE(restored_tail.empty()) << tag;
        EXPECT_EQ(full.substr(full.size() - restored_tail.size()),
                  restored_tail)
            << tag;

        // Strongest form: the resumed run's final-state checkpoint is
        // byte-identical to the uninterrupted run's — every queue,
        // cursor, cache line and statistic in the machine converged.
        EXPECT_EQ(readFile(end_a), readFile(end_b)) << tag;

        std::remove(mid_path.c_str());
        std::remove(end_a.c_str());
        std::remove(end_b.c_str());
    }
}

TEST(Checkpoint, RejectsMismatchedConfigAndKernel)
{
    GpuConfig cfg = smallConfig();
    const std::string path = tempPath("ckpt_guard");
    {
        Gpu gpu(cfg);
        gpu.setCheckpoint(path, 0);
        launchOn(gpu, "vecadd");
    }

    // A different machine configuration must refuse the checkpoint.
    GpuConfig other = cfg;
    other.numSms += 1;
    Gpu wrong(other);
    EXPECT_THROW(wrong.restoreCheckpoint(path), FatalError);

    // A different kernel must refuse to resume.
    Gpu gpu(cfg);
    const LaunchParams lp = gpu.restoreCheckpoint(path);
    auto other_wl = makeWorkload("reduce", 0);
    const Kernel other_kernel = other_wl->buildKernel();
    EXPECT_THROW(gpu.launch(other_kernel, lp), FatalError);
}

TEST(Checkpoint, RejectsGarbageFiles)
{
    const std::string path = tempPath("ckpt_garbage");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a checkpoint";
    }
    Gpu gpu(smallConfig());
    EXPECT_THROW(gpu.restoreCheckpoint(path), FatalError);
    EXPECT_THROW(gpu.restoreCheckpoint(path + ".missing"), FatalError);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// verifyHorizon oracle: a fast-forward may never skip real work.
// ---------------------------------------------------------------------------

TEST(HorizonOracle, HoldsAcrossMachinesAndWorkloads)
{
    // The oracle recomputes every component's next event without caches
    // on each jump and asserts none precedes the horizon. horizonOracle
    // forces it on even in release builds, so this test bites in both.
    GpuConfig base = smallConfig();
    base.fastForwardEnabled = true;
    base.horizonOracle = true;
    GpuConfig vt = base;
    vt.vtEnabled = true;
    GpuConfig throttled = base;
    throttled.throttleEnabled = true;
    const struct
    {
        const char *tag;
        GpuConfig cfg;
    } machines[] = {{"baseline", base}, {"vt", vt},
                    {"throttle", throttled}};

    for (const auto &m : machines) {
        for (const auto &name : {"vecadd", "bfs", "stencil"}) {
            GpuConfig on = m.cfg;
            GpuConfig off = m.cfg;
            off.fastForwardEnabled = false;
            Gpu a(on), b(off);
            const KernelStats sa = launchOn(a, name);
            const KernelStats sb = launchOn(b, name);
            expectIdenticalStats(
                sa, sb, std::string(m.tag) + "/oracle/" + name);
            EXPECT_EQ(b.fastForwardedCycles(), 0u);
        }
    }
}

// ---------------------------------------------------------------------------
// Rng streams round-trip through save/restore and reset.
// ---------------------------------------------------------------------------

TEST(RngLifecycle, SaveRestoreContinuesSequence)
{
    Rng a(0x1234);
    for (int i = 0; i < 100; ++i)
        a.next();

    std::uint64_t words[4];
    a.saveState(words);
    Rng b; // Different seed, different position.
    b.restoreState(words, a.seed());

    EXPECT_EQ(b.seed(), a.seed());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());

    // reset() rewinds to the construction seed exactly.
    a.reset();
    Rng fresh(0x1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), fresh.next());
}

} // namespace
} // namespace vtsim
