/**
 * @file
 * FIG-9 (ablation): the design choices inside the VT manager —
 * swap-out trigger (all-warps-stalled vs any-warp-stalled) and swap-in
 * selection (ready-first vs oldest-first) — plus the stall-threshold
 * hysteresis. The paper's policy (all-stalled + ready-first) should win
 * or tie everywhere.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "parallel_runner.hh"

int
main(int argc, char **argv)
{
    using namespace vtsim;
    using namespace vtsim::bench;

    printHeader("FIG-9", "swap-policy ablation (speedup over baseline)");
    const GpuConfig base = GpuConfig::fermiLike();
    const char *subset[] = {"vecadd", "saxpy", "reduce", "stencil",
                            "histogram"};

    struct Variant
    {
        const char *name;
        VtSwapTrigger trigger;
        VtSwapInPolicy pick;
        std::uint32_t threshold;
    };
    const Variant variants[] = {
        {"paper(all+ready)", VtSwapTrigger::AllWarpsStalled,
         VtSwapInPolicy::ReadyFirst, 4},
        {"any-warp", VtSwapTrigger::AnyWarpStalled,
         VtSwapInPolicy::ReadyFirst, 4},
        {"oldest-first", VtSwapTrigger::AllWarpsStalled,
         VtSwapInPolicy::OldestFirst, 4},
        {"no-hysteresis", VtSwapTrigger::AllWarpsStalled,
         VtSwapInPolicy::ReadyFirst, 0},
    };
    constexpr std::size_t stride = 1 + std::size(variants);

    std::vector<RunSpec> specs;
    for (const char *name : subset) {
        specs.push_back({name, base, benchScale});
        for (const auto &v : variants) {
            GpuConfig cfg = base;
            cfg.vtEnabled = true;
            cfg.vtSwapTrigger = v.trigger;
            cfg.vtSwapInPolicy = v.pick;
            cfg.vtStallThreshold = v.threshold;
            specs.push_back({name, cfg, benchScale});
        }
    }
    const auto results = runAll(specs, argc, argv);

    std::printf("%-14s", "benchmark");
    for (const auto &v : variants)
        std::printf(" %17s", v.name);
    std::printf("\n");

    for (std::size_t w = 0; w < std::size(subset); ++w) {
        const RunResult &ref = results[w * stride];
        std::printf("%-14s", subset[w]);
        for (std::size_t v = 0; v < std::size(variants); ++v) {
            const RunResult &r = results[w * stride + 1 + v];
            std::printf("    %6.2fx (%4llu)",
                        double(ref.stats.cycles) / r.stats.cycles,
                        (unsigned long long)r.stats.swapOuts);
        }
        std::printf("\n");
    }
    std::printf("(parenthesised: swap-outs performed)\n");
    return 0;
}
