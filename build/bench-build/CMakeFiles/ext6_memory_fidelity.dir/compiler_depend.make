# Empty compiler generated dependencies file for ext6_memory_fidelity.
# This may be replaced when dependencies are built.
