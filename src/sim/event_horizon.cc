#include "sim/event_horizon.hh"

#include <algorithm>

#include "common/log.hh"

namespace vtsim {

Cycle
EventHorizon::target(Cycle now, Cycle deadline)
{
    Cycle horizon = deadline;
    for (SimComponent *c : components_)
        horizon = std::min(horizon, c->nextEventCycle(now));
    for (const BoundConstraint &bc : constraints_)
        horizon = std::min(horizon, bc.fn(bc.ctx, now));
    return std::max(horizon, now);
}

void
EventHorizon::advance(Cycle now, Cycle to, bool oracle)
{
    VTSIM_ASSERT(to > now, "fast-forward target ", to, " not past ", now);
    if (oracle)
        verifyHorizon(now, to);
    for (SimComponent *c : components_)
        c->settleTo(to);
    fastForwarded_ += to - now;
}

void
EventHorizon::verifyHorizon(Cycle now, Cycle horizon)
{
    for (std::size_t i = 0; i < components_.size(); ++i) {
        const Cycle fresh = components_[i]->nextEventCycleFresh(now);
        VTSIM_ASSERT(fresh >= horizon,
                     "horizon oracle: component ", i, " has a real event at ",
                     fresh, " before horizon ", horizon, " (now=", now, ")");
    }
}

void
EventHorizon::resetAll()
{
    for (SimComponent *c : components_)
        c->reset();
    fastForwarded_ = 0;
}

void
EventHorizon::saveAll(Serializer &ser) const
{
    // fastForwarded_ is deliberately NOT serialized: it measures how
    // this process reached the state (jump patterns differ between a
    // boundary-clamped checkpointing run and an unclamped one), not
    // the state itself. Leaving it out keeps final checkpoints of a
    // resumed run byte-identical to the uninterrupted run's.
    const std::size_t sec = ser.beginSection("horz");
    ser.put<std::uint64_t>(components_.size());
    ser.endSection(sec);
    for (const SimComponent *c : components_)
        c->save(ser);
}

void
EventHorizon::restoreAll(Deserializer &des)
{
    des.beginSection("horz");
    const auto n = des.get<std::uint64_t>();
    VTSIM_ASSERT(n == components_.size(),
                 "checkpoint has ", n, " components, this Gpu has ",
                 components_.size());
    des.endSection();
    fastForwarded_ = 0; // Counts this process's jumps only.
    for (SimComponent *c : components_)
        c->restore(des);
}

} // namespace vtsim
