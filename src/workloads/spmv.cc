/**
 * @file
 * Sparse matrix-vector multiply (CSR, one row per thread): irregular
 * column-index gathers and per-row trip-count divergence — the
 * latency-bound, scheduling-limited class VT helps most.
 */

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/factories.hh"

namespace vtsim {

namespace {

class Spmv : public Workload
{
  public:
    explicit Spmv(std::uint32_t scale)
        : rows_(scale == 0 ? 256 : 8192 * scale)
    {}

    std::string name() const override { return "spmv"; }

    std::string
    description() const override
    {
        return "CSR SpMV, one row per thread, banded columns";
    }

    WorkloadClass
    expectedClass() const override
    {
        return WorkloadClass::SchedulingLimited;
    }

    Kernel
    buildKernel() const override
    {
        return assemble(R"(
.kernel spmv
    ldp r0, 0            # rowptr
    ldp r1, 1            # colidx
    ldp r2, 2            # vals
    ldp r3, 3            # x
    ldp r4, 4            # y
    ldp r5, 5            # numRows
    s2r r6, ctaid.x
    s2r r7, ntid.x
    s2r r8, tid.x
    imad r9, r6, r7, r8  # row
    isetp.ge r10, r9, r5
    bra r10, done
    shl r11, r9, 2
    iadd r11, r11, r0
    ldg r12, [r11]       # start
    ldg r13, [r11+4]     # end
    movi r14, 0          # acc
jloop:
    isetp.ge r15, r12, r13
    bra r15, jdone
    shl r16, r12, 2
    iadd r17, r16, r1
    ldg r18, [r17]       # col
    iadd r19, r16, r2
    ldg r20, [r19]       # val
    shl r21, r18, 2
    iadd r21, r21, r3
    ldg r22, [r21]       # x[col]
    ffma r14, r20, r22, r14
    iadd r12, r12, 1
    jmp jloop
jdone:
    shl r23, r9, 2
    iadd r23, r23, r4
    stg [r23], r14
done:
    exit
)");
    }

    LaunchParams
    prepare(GlobalMemory &gmem) override
    {
        Rng rng(0xabcd06);
        const std::uint32_t cols = rows_;
        // 4-12 nonzeros per row, clustered in a band around the diagonal
        // as in real discretisation matrices (a fully random pattern
        // would be pathological for any cache hierarchy).
        const std::int64_t half_band = 128;
        std::vector<std::uint32_t> rowptr(rows_ + 1);
        std::vector<std::uint32_t> colidx;
        std::vector<float> vals;
        rowptr[0] = 0;
        for (std::uint32_t r = 0; r < rows_; ++r) {
            const std::uint32_t nnz = 4 + rng.nextBelow(5);
            for (std::uint32_t j = 0; j < nnz; ++j) {
                const std::int64_t col =
                    std::clamp<std::int64_t>(
                        std::int64_t(r) +
                            rng.nextRange(-half_band, half_band),
                        0, std::int64_t(cols) - 1);
                colidx.push_back(static_cast<std::uint32_t>(col));
                vals.push_back(rng.nextFloat());
            }
            rowptr[r + 1] = colidx.size();
        }
        std::vector<float> x(cols);
        for (auto &v : x)
            v = rng.nextFloat();

        rowptrAddr_ = gmem.alloc(rowptr.size() * 4);
        colAddr_ = gmem.alloc(colidx.size() * 4);
        valAddr_ = gmem.alloc(vals.size() * 4);
        xAddr_ = gmem.alloc(x.size() * 4);
        yAddr_ = gmem.alloc(rows_ * 4);
        gmem.writeWords(rowptrAddr_, rowptr);
        gmem.writeWords(colAddr_, colidx);
        gmem.writeFloats(valAddr_, vals);
        gmem.writeFloats(xAddr_, x);

        expected_.assign(rows_, 0.0f);
        for (std::uint32_t r = 0; r < rows_; ++r) {
            float acc = 0.0f;
            for (std::uint32_t j = rowptr[r]; j < rowptr[r + 1]; ++j)
                acc = vals[j] * x[colidx[j]] + acc;
            expected_[r] = acc;
        }

        LaunchParams lp;
        lp.cta = Dim3(64);
        lp.grid = Dim3(ceilDiv(rows_, 64));
        lp.params = {std::uint32_t(rowptrAddr_), std::uint32_t(colAddr_),
                     std::uint32_t(valAddr_), std::uint32_t(xAddr_),
                     std::uint32_t(yAddr_), rows_};
        return lp;
    }

    bool
    verify(const GlobalMemory &gmem) const override
    {
        const auto got = gmem.readFloats(yAddr_, rows_);
        for (std::uint32_t r = 0; r < rows_; ++r)
            if (got[r] != expected_[r])
                return false;
        return true;
    }

  private:
    std::uint32_t rows_;
    Addr rowptrAddr_ = 0, colAddr_ = 0, valAddr_ = 0, xAddr_ = 0,
         yAddr_ = 0;
    std::vector<float> expected_;
};

} // namespace

std::unique_ptr<Workload>
makeSpmv(std::uint32_t scale)
{
    return std::make_unique<Spmv>(scale);
}

} // namespace vtsim
