#include "common/logger.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace vtsim::logging {

namespace {

std::atomic<int> g_explicit_level{-1};

Level
envLevel()
{
    static const Level level = [] {
        const char *env = std::getenv("VTSIM_LOG_LEVEL");
        if (!env || !*env)
            return Level::Info;
        try {
            return parseLevel(env);
        } catch (const FatalError &) {
            std::fprintf(stderr,
                         "[logger] warn: ignoring unknown VTSIM_LOG_LEVEL "
                         "'%s' (want debug|info|warn|error|off)\n",
                         env);
            return Level::Info;
        }
    }();
    return level;
}

} // namespace

Level
level()
{
    const int explicit_level =
        g_explicit_level.load(std::memory_order_relaxed);
    if (explicit_level >= 0)
        return Level(explicit_level);
    return envLevel();
}

void
setLevel(Level level)
{
    g_explicit_level.store(int(level), std::memory_order_relaxed);
}

Level
parseLevel(const std::string &text)
{
    if (text == "debug")
        return Level::Debug;
    if (text == "info")
        return Level::Info;
    if (text == "warn")
        return Level::Warn;
    if (text == "error")
        return Level::Error;
    if (text == "off")
        return Level::Off;
    VTSIM_FATAL("unknown log level '", text,
                "' (want debug|info|warn|error|off)");
}

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Debug: return "debug";
      case Level::Info: return "info";
      case Level::Warn: return "warn";
      case Level::Error: return "error";
      case Level::Off: return "off";
    }
    return "?";
}

void
message(Level level, const char *component, const std::string &text)
{
    // One pre-formatted fputs so concurrent writers (worker threads,
    // the accept loop) never interleave mid-line.
    std::string line;
    line.reserve(text.size() + 32);
    line += '[';
    line += component;
    line += "] ";
    line += levelName(level);
    line += ": ";
    line += text;
    line += '\n';
    std::fputs(line.c_str(), stderr);
}

} // namespace vtsim::logging
