#include "func/exec_context.hh"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/log.hh"
#include "func/global_memory.hh"

namespace vtsim {

void
CtaFuncState::init(std::uint64_t linear_cta_id, Dim3 cta_idx,
                   std::uint32_t threads_per_cta,
                   std::uint32_t regs_per_thread,
                   std::uint32_t shared_bytes)
{
    linearCtaId = linear_cta_id;
    ctaIdx = cta_idx;
    threadsPerCta = threads_per_cta;
    regsPerThread = regs_per_thread;
    regs.assign(std::size_t(threads_per_cta) * regs_per_thread, 0);
    shared.assign(shared_bytes, 0);
}

std::uint32_t
CtaFuncState::readShared32(std::uint32_t byte_addr) const
{
    // Fast path: a fully in-bounds access is a single 4-byte copy. The
    // 64-bit sum guards against byte_addr + 4 wrapping in 32 bits.
    if (std::uint64_t(byte_addr) + 4 <= shared.size()) {
        if constexpr (std::endian::native == std::endian::little) {
            std::uint32_t v;
            std::memcpy(&v, shared.data() + byte_addr, 4);
            return v;
        }
    }
#ifndef NDEBUG
    VTSIM_ASSERT(byte_addr >= shared.size() ||
                 std::uint64_t(byte_addr) + 4 <= shared.size(),
                 "shared read of 4 bytes at ", byte_addr,
                 " straddles the allocation boundary (", shared.size(),
                 " bytes)");
#endif
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        const std::uint32_t a = byte_addr + i;
        v = (v << 8) | (a < shared.size() ? shared[a] : 0);
    }
    return v;
}

void
CtaFuncState::writeShared32(std::uint32_t byte_addr, std::uint32_t value)
{
    if (std::uint64_t(byte_addr) + 4 <= shared.size()) {
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(shared.data() + byte_addr, &value, 4);
            return;
        }
    }
#ifndef NDEBUG
    VTSIM_ASSERT(byte_addr >= shared.size() ||
                 std::uint64_t(byte_addr) + 4 <= shared.size(),
                 "shared write of 4 bytes at ", byte_addr,
                 " straddles the allocation boundary (", shared.size(),
                 " bytes)");
#endif
    for (int i = 0; i < 4; ++i) {
        const std::uint32_t a = byte_addr + i;
        if (a < shared.size())
            shared[a] = (value >> (8 * i)) & 0xff;
    }
}

namespace {

float
asFloat(std::uint32_t v)
{
    return std::bit_cast<float>(v);
}

std::uint32_t
asBits(float v)
{
    return std::bit_cast<std::uint32_t>(v);
}

bool
compare(CmpOp cmp, std::int64_t a, std::int64_t b)
{
    switch (cmp) {
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::GT: return a > b;
      case CmpOp::GE: return a >= b;
    }
    return false;
}

bool
compareF(CmpOp cmp, float a, float b)
{
    switch (cmp) {
      case CmpOp::EQ: return a == b;
      case CmpOp::NE: return a != b;
      case CmpOp::LT: return a < b;
      case CmpOp::LE: return a <= b;
      case CmpOp::GT: return a > b;
      case CmpOp::GE: return a >= b;
    }
    return false;
}

std::uint32_t
readSpecial(SpecialReg sreg, std::uint32_t thread, std::uint32_t lane,
            std::uint32_t warp_in_cta, const Dim3 &cta_idx,
            const LaunchParams &launch)
{
    const auto &cta = launch.cta;
    switch (sreg) {
      case SpecialReg::TidX: return thread % cta.x;
      case SpecialReg::TidY: return (thread / cta.x) % cta.y;
      case SpecialReg::TidZ: return thread / (cta.x * cta.y);
      case SpecialReg::NTidX: return cta.x;
      case SpecialReg::NTidY: return cta.y;
      case SpecialReg::NTidZ: return cta.z;
      case SpecialReg::CtaIdX: return cta_idx.x;
      case SpecialReg::CtaIdY: return cta_idx.y;
      case SpecialReg::CtaIdZ: return cta_idx.z;
      case SpecialReg::NCtaIdX: return launch.grid.x;
      case SpecialReg::NCtaIdY: return launch.grid.y;
      case SpecialReg::NCtaIdZ: return launch.grid.z;
      case SpecialReg::LaneId: return lane;
      case SpecialReg::WarpIdInCta: return warp_in_cta;
    }
    return 0;
}

} // namespace

ExecResult
execute(const Instruction &inst, std::uint32_t warp_in_cta, ActiveMask mask,
        CtaFuncState &cta, GlobalMemory &gmem, const LaunchParams &launch)
{
    ExecResult result;
    const std::uint32_t base_thread = warp_in_cta * warpSize;

    for (std::uint32_t lane = 0; lane < warpSize; ++lane) {
        if (!mask.test(lane))
            continue;
        const std::uint32_t thread = base_thread + lane;
        if (thread >= cta.threadsPerCta)
            continue; // Partial tail warp: lanes beyond the CTA are dead.

        auto rd = [&](int i) -> std::uint32_t {
            return cta.readReg(thread, inst.src[i]);
        };
        // Second ALU operand: register or immediate.
        auto rb = [&]() -> std::uint32_t {
            return inst.useImm ? static_cast<std::uint32_t>(inst.imm)
                               : rd(1);
        };
        auto wr = [&](std::uint32_t v) {
            cta.writeReg(thread, inst.dst, v);
        };

        switch (inst.op) {
          case Opcode::NOP:
            break;
          case Opcode::MOV: wr(rd(0)); break;
          case Opcode::MOVI: wr(static_cast<std::uint32_t>(inst.imm)); break;
          case Opcode::IADD: wr(rd(0) + rb()); break;
          case Opcode::ISUB: wr(rd(0) - rb()); break;
          case Opcode::IMUL: wr(rd(0) * rb()); break;
          case Opcode::IMAD: wr(rd(0) * rd(1) + rd(2)); break;
          case Opcode::IMIN: {
            const auto a = static_cast<std::int32_t>(rd(0));
            const auto b = static_cast<std::int32_t>(rb());
            wr(static_cast<std::uint32_t>(a < b ? a : b));
            break;
          }
          case Opcode::IMAX: {
            const auto a = static_cast<std::int32_t>(rd(0));
            const auto b = static_cast<std::int32_t>(rb());
            wr(static_cast<std::uint32_t>(a > b ? a : b));
            break;
          }
          case Opcode::AND: wr(rd(0) & rb()); break;
          case Opcode::OR: wr(rd(0) | rb()); break;
          case Opcode::XOR: wr(rd(0) ^ rb()); break;
          case Opcode::NOT: wr(~rd(0)); break;
          case Opcode::SHL: wr(rd(0) << (rb() & 31)); break;
          case Opcode::SHR: wr(rd(0) >> (rb() & 31)); break;
          case Opcode::ISETP:
            wr(compare(inst.cmp, static_cast<std::int32_t>(rd(0)),
                       static_cast<std::int32_t>(rb())) ? 1u : 0u);
            break;
          case Opcode::SEL: wr(rd(2) ? rd(0) : rd(1)); break;
          case Opcode::FADD: wr(asBits(asFloat(rd(0)) + asFloat(rb())));
            break;
          case Opcode::FSUB: wr(asBits(asFloat(rd(0)) - asFloat(rb())));
            break;
          case Opcode::FMUL: wr(asBits(asFloat(rd(0)) * asFloat(rb())));
            break;
          case Opcode::FFMA:
            wr(asBits(asFloat(rd(0)) * asFloat(rd(1)) + asFloat(rd(2))));
            break;
          case Opcode::FMIN:
            wr(asBits(std::fmin(asFloat(rd(0)), asFloat(rb()))));
            break;
          case Opcode::FMAX:
            wr(asBits(std::fmax(asFloat(rd(0)), asFloat(rb()))));
            break;
          case Opcode::FSETP:
            wr(compareF(inst.cmp, asFloat(rd(0)),
                        inst.useImm ? asFloat(static_cast<std::uint32_t>(
                                          inst.imm))
                                    : asFloat(rd(1))) ? 1u : 0u);
            break;
          case Opcode::I2F:
            wr(asBits(static_cast<float>(static_cast<std::int32_t>(rd(0)))));
            break;
          case Opcode::F2I:
            wr(static_cast<std::uint32_t>(
                static_cast<std::int32_t>(asFloat(rd(0)))));
            break;
          case Opcode::IDIV: {
            const auto a = static_cast<std::int32_t>(rd(0));
            const auto b = static_cast<std::int32_t>(rb());
            if (b == 0) {
                wr(0u); // GPU semantics: no trap.
            } else if (b == -1) {
                // Defined even for INT_MIN (wraps), unlike C++.
                wr(0u - rd(0));
            } else {
                wr(static_cast<std::uint32_t>(a / b));
            }
            break;
          }
          case Opcode::IREM: {
            const auto a = static_cast<std::int32_t>(rd(0));
            const auto b = static_cast<std::int32_t>(rb());
            if (b == 0 || b == -1)
                wr(0u); // rem by -1 is exactly 0; rem by 0 -> 0.
            else
                wr(static_cast<std::uint32_t>(a % b));
            break;
          }
          case Opcode::FRCP: {
            const float x = asFloat(rd(0));
            wr(asBits(x != 0.0f ? 1.0f / x : 0.0f));
            break;
          }
          case Opcode::FSQRT:
            wr(asBits(std::sqrt(std::fmax(asFloat(rd(0)), 0.0f))));
            break;
          case Opcode::FEXP: wr(asBits(std::exp(asFloat(rd(0))))); break;
          case Opcode::FLOG: {
            const float x = asFloat(rd(0));
            wr(asBits(x > 0.0f ? std::log(x) : 0.0f));
            break;
          }
          case Opcode::S2R:
            wr(readSpecial(inst.sreg, thread, lane, warp_in_cta, cta.ctaIdx,
                           launch));
            break;
          case Opcode::LDP: {
            const auto idx = static_cast<std::uint32_t>(inst.imm);
            VTSIM_ASSERT(idx < launch.params.size(),
                         "LDP index ", idx, " out of range");
            wr(launch.params[idx]);
            break;
          }
          case Opcode::LDG: {
            const Addr addr = rd(0) + inst.imm;
            const std::uint32_t v = gmem.read32(addr);
            wr(v);
            result.globalAccesses.push_back({lane, addr, 0, v});
            break;
          }
          case Opcode::STG: {
            const Addr addr = rd(0) + inst.imm;
            gmem.write32(addr, rd(1));
            result.globalAccesses.push_back({lane, addr, rd(1), 0});
            break;
          }
          case Opcode::ATOMG_ADD: {
            const Addr addr = rd(0) + inst.imm;
            const std::uint32_t old = gmem.read32(addr);
            gmem.write32(addr, old + rd(1));
            wr(old);
            result.globalAccesses.push_back({lane, addr, rd(1), old});
            break;
          }
          case Opcode::LDS: {
            const std::uint32_t addr = rd(0) + inst.imm;
            wr(cta.readShared32(addr));
            result.sharedAccesses.push_back({lane, addr});
            break;
          }
          case Opcode::STS: {
            const std::uint32_t addr = rd(0) + inst.imm;
            cta.writeShared32(addr, rd(1));
            result.sharedAccesses.push_back({lane, addr});
            break;
          }
          case Opcode::BRA:
            // Unconditional (no predicate) or predicate != 0 takes it.
            if (inst.src[0] == noReg || rd(0) != 0)
                result.branchTaken.set(lane);
            break;
          case Opcode::BAR:
          case Opcode::EXIT:
            break; // Handled entirely by the timing model.
          default:
            VTSIM_PANIC("unimplemented opcode ",
                        static_cast<int>(inst.op));
        }
    }
    return result;
}

} // namespace vtsim
