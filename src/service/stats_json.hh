/**
 * @file
 * The "vtsim-stats-v1" JSON writer, shared by the figure binaries'
 * batch runner (bench/parallel_runner.cc delegates here) and the job
 * service (vtsimd --stats-json). One RunRecord per simulated run; the
 * service adds an optional top-level "service" object with its
 * scheduler telemetry. Validated in CI against ci/stats_schema.json by
 * scripts/validate_stats_json.py.
 */

#ifndef VTSIM_SERVICE_STATS_JSON_HH
#define VTSIM_SERVICE_STATS_JSON_HH

#include <ostream>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "gpu/gpu.hh"
#include "service/json.hh"

namespace vtsim::service {

/** One simulated run, as the stats JSON reports it. */
struct RunRecord
{
    std::string workload;
    std::uint32_t scale = 1;
    GpuConfig config;
    bool verified = false;
    /** Host wall-clock seconds spent simulating. */
    double wallSeconds = 0.0;
    std::uint32_t maxSimtDepth = 0;
    KernelStats stats;
    /** Interval-sampler JSONL series (empty unless sampled). */
    std::string intervalSeries;
    /** Per-grid results of a concurrent run (empty for solo runs);
     *  written as the optional "grids" array. */
    std::vector<GridStats> grids;
    /** Sharing policy of a concurrent run ("spatial" | "vt-fill" |
     *  "preempt"); empty for solo runs and omitted from the JSON. */
    std::string sharePolicy;

    double
    kcyclesPerSec() const
    {
        return wallSeconds > 0.0 ? stats.cycles / wallSeconds / 1e3 : 0.0;
    }

    double
    mips() const
    {
        return wallSeconds > 0.0
                   ? stats.threadInstructions / wallSeconds / 1e6
                   : 0.0;
    }
};

/** Shortest round-trippable decimal form of @p v. */
std::string jsonDouble(double v);

/**
 * Batch-level header metadata (vtsim-stats-v1 since the observability
 * PR): which host produced the document, how long the whole batch
 * took, and the batch-aggregate simulation rate — the same numbers the
 * [sim-rate]/[parallel-runner] stderr lines report, now machine-
 * readable.
 */
struct BatchMeta
{
    /** Producing host; empty = filled via gethostname() at write. */
    std::string host;
    /** Whole-batch wall time (parallel runs overlap, so this is not
     *  the sum of per-run wall_seconds). */
    double wallMs = 0.0;
    /** Per-run shard threads (--sim-threads); 0 = sequential. */
    unsigned simThreads = 0;
    /** "microcode" | "legacy" | "default" (no --exec override). */
    std::string execMode = "default";
    /** Batch simulated kilocycles per host-second. */
    double kcyclesPerSec = 0.0;
    /** Batch millions of thread instructions per host-second. */
    double mips = 0.0;
};

/**
 * Write the whole document: schema tag, the batch header (@p meta),
 * the optional @p service section (pass nullptr for plain batch
 * output), the optional @p fabric section (the coordinator's fleet
 * telemetry; vtsim-coord --stats-json), then one entry per run in
 * order.
 */
void writeStatsJson(std::ostream &os,
                    const std::vector<RunRecord> &runs,
                    const Json *service, const BatchMeta &meta,
                    const Json *fabric = nullptr);

} // namespace vtsim::service

#endif // VTSIM_SERVICE_STATS_JSON_HH
