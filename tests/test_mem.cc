/**
 * @file
 * Unit tests for the coalescer, shared-memory bank model, global memory
 * backing store, and the interconnect.
 */

#include <gtest/gtest.h>

#include "func/global_memory.hh"
#include "mem/coalescer.hh"
#include "mem/interconnect.hh"

namespace vtsim {
namespace {

std::vector<LaneAccess>
consecutiveWords(Addr base, std::uint32_t count)
{
    std::vector<LaneAccess> out;
    for (std::uint32_t lane = 0; lane < count; ++lane)
        out.push_back({lane, base + 4 * lane});
    return out;
}

TEST(Coalescer, FullyCoalescedWarpIsOneTransaction)
{
    const auto txns = coalesce(consecutiveWords(0x1000, 32), 128);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].lineAddr, 0x1000u);
    EXPECT_EQ(txns[0].lanes, 32u);
    EXPECT_EQ(txns[0].bytes, 128u);
}

TEST(Coalescer, MisalignedWarpSpansTwoLines)
{
    const auto txns = coalesce(consecutiveWords(0x1040, 32), 128);
    ASSERT_EQ(txns.size(), 2u);
    EXPECT_EQ(txns[0].lineAddr, 0x1000u);
    EXPECT_EQ(txns[1].lineAddr, 0x1080u);
    EXPECT_EQ(txns[0].lanes + txns[1].lanes, 32u);
}

TEST(Coalescer, SameAddressBroadcastsToOneLine)
{
    std::vector<LaneAccess> acc;
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        acc.push_back({lane, 0x2004});
    const auto txns = coalesce(acc, 128);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].lanes, 32u);
    EXPECT_EQ(txns[0].bytes, 4u);
}

TEST(Coalescer, StridedAccessScatters)
{
    std::vector<LaneAccess> acc;
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        acc.push_back({lane, Addr(lane) * 128});
    const auto txns = coalesce(acc, 128);
    EXPECT_EQ(txns.size(), 32u);
}

TEST(Coalescer, PreservesFirstTouchOrder)
{
    std::vector<LaneAccess> acc = {
        {0, 0x5000}, {1, 0x1000}, {2, 0x5004}, {3, 0x3000},
    };
    const auto txns = coalesce(acc, 128);
    ASSERT_EQ(txns.size(), 3u);
    EXPECT_EQ(txns[0].lineAddr, 0x5000u);
    EXPECT_EQ(txns[1].lineAddr, 0x1000u);
    EXPECT_EQ(txns[2].lineAddr, 0x3000u);
    EXPECT_EQ(txns[0].lanes, 2u);
}

TEST(Coalescer, PartialWarp)
{
    const auto txns = coalesce(consecutiveWords(0x1000, 7), 128);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].lanes, 7u);
    EXPECT_EQ(txns[0].bytes, 28u);
}

TEST(Coalescer, EmptyInput)
{
    EXPECT_TRUE(coalesce({}, 128).empty());
}

TEST(SharedMemPasses, NoAccessesIsZero)
{
    EXPECT_EQ(sharedMemPasses({}, 32), 0u);
}

TEST(SharedMemPasses, ConflictFreeIsOnePass)
{
    std::vector<LaneAccess> acc;
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        acc.push_back({lane, Addr(lane) * 4});
    EXPECT_EQ(sharedMemPasses(acc, 32), 1u);
}

TEST(SharedMemPasses, BroadcastIsOnePass)
{
    std::vector<LaneAccess> acc;
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        acc.push_back({lane, 44});
    EXPECT_EQ(sharedMemPasses(acc, 32), 1u);
}

TEST(SharedMemPasses, TwoWayConflict)
{
    std::vector<LaneAccess> acc;
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        acc.push_back({lane, Addr(lane) * 8}); // stride 2 words
    EXPECT_EQ(sharedMemPasses(acc, 32), 2u);
}

TEST(SharedMemPasses, WorstCaseAllSameBankDistinctWords)
{
    std::vector<LaneAccess> acc;
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        acc.push_back({lane, Addr(lane) * 32 * 4}); // stride 32 words
    EXPECT_EQ(sharedMemPasses(acc, 32), 32u);
}

TEST(SharedMemPasses, PaddedTransposeColumnIsConflictFree)
{
    // Column access of a 17-word-padded tile: lane i touches word i*17.
    std::vector<LaneAccess> acc;
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        acc.push_back({lane, Addr(lane) * 17 * 4});
    EXPECT_EQ(sharedMemPasses(acc, 32), 1u);
}

TEST(GlobalMemory, ZeroFilledByDefault)
{
    GlobalMemory m;
    EXPECT_EQ(m.read32(0x123456), 0u);
    EXPECT_EQ(m.read8(99), 0u);
    EXPECT_EQ(m.touchedPages(), 0u);
}

TEST(GlobalMemory, ReadWriteRoundTrip)
{
    GlobalMemory m;
    m.write32(0x1000, 0xcafebabe);
    EXPECT_EQ(m.read32(0x1000), 0xcafebabeu);
    EXPECT_EQ(m.read8(0x1000), 0xbeu); // little endian
    EXPECT_EQ(m.read8(0x1003), 0xcau);
}

TEST(GlobalMemory, UnalignedAndPageStraddling)
{
    GlobalMemory m;
    const Addr addr = GlobalMemory::pageSize - 2;
    m.write32(addr, 0x11223344);
    EXPECT_EQ(m.read32(addr), 0x11223344u);
    EXPECT_EQ(m.touchedPages(), 2u);
}

TEST(GlobalMemory, FloatAccessors)
{
    GlobalMemory m;
    m.writeF32(64, 3.25f);
    EXPECT_EQ(m.readF32(64), 3.25f);
}

TEST(GlobalMemory, BulkTransfers)
{
    GlobalMemory m;
    m.writeWords(0x100, {1, 2, 3});
    const auto words = m.readWords(0x100, 3);
    EXPECT_EQ(words, (std::vector<std::uint32_t>{1, 2, 3}));
    m.writeFloats(0x200, {1.5f, -2.0f});
    const auto floats = m.readFloats(0x200, 2);
    EXPECT_EQ(floats[0], 1.5f);
    EXPECT_EQ(floats[1], -2.0f);
}

TEST(GlobalMemory, AllocatorAlignsAndAdvances)
{
    GlobalMemory m;
    const Addr a = m.alloc(100, 256);
    const Addr b = m.alloc(10, 256);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_NE(m.alloc(0), m.alloc(0)); // zero-size allocs still distinct
}

class NocTest : public ::testing::Test
{
  protected:
    NocTest() : noc_(NocParams{10, 1, 2, 2})
    {
        noc_.setRouter([](Addr a) {
            return static_cast<std::uint32_t>((a / 128) % 2);
        });
        noc_.setRequestSink([this](const MemRequest &r, Cycle) {
            deliveredReqs_.push_back(r.lineAddr);
        });
        noc_.setResponseSink([this](const MemRequest &r, Cycle) {
            deliveredResps_.push_back(r.srcSm);
        });
    }

    MemRequest
    req(Addr line, SmId sm = 0)
    {
        MemRequest r;
        r.lineAddr = line;
        r.srcSm = sm;
        return r;
    }

    Interconnect noc_;
    std::vector<Addr> deliveredReqs_;
    std::vector<SmId> deliveredResps_;
};

TEST_F(NocTest, LatencyRespected)
{
    noc_.sendRequest(req(0), 0);
    for (Cycle c = 0; c < 10; ++c) {
        noc_.tick(c);
        EXPECT_TRUE(deliveredReqs_.empty()) << "cycle " << c;
    }
    noc_.tick(10);
    EXPECT_EQ(deliveredReqs_.size(), 1u);
}

TEST_F(NocTest, PerPortBandwidthLimit)
{
    // Three requests to the same partition, one flit/cycle.
    noc_.sendRequest(req(0), 0);
    noc_.sendRequest(req(256), 0);
    noc_.sendRequest(req(512), 0);
    noc_.tick(10);
    EXPECT_EQ(deliveredReqs_.size(), 1u);
    noc_.tick(11);
    EXPECT_EQ(deliveredReqs_.size(), 2u);
    noc_.tick(12);
    EXPECT_EQ(deliveredReqs_.size(), 3u);
}

TEST_F(NocTest, DistinctPortsDeliverInParallel)
{
    noc_.sendRequest(req(0), 0);   // partition 0
    noc_.sendRequest(req(128), 0); // partition 1
    noc_.tick(10);
    EXPECT_EQ(deliveredReqs_.size(), 2u);
}

TEST_F(NocTest, ResponsesRouteBySourceSm)
{
    MemRequest r0 = req(0, 0), r1 = req(0, 1);
    noc_.sendResponse(r0, 0);
    noc_.sendResponse(r1, 0);
    noc_.tick(10);
    ASSERT_EQ(deliveredResps_.size(), 2u); // distinct SM ports
    EXPECT_EQ(deliveredResps_[0], 0u);
    EXPECT_EQ(deliveredResps_[1], 1u);
}

TEST_F(NocTest, IdleTracksQueues)
{
    EXPECT_TRUE(noc_.idle());
    noc_.sendRequest(req(0), 0);
    EXPECT_FALSE(noc_.idle());
    noc_.tick(10);
    EXPECT_TRUE(noc_.idle());
}

} // namespace
} // namespace vtsim
