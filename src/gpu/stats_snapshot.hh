/**
 * @file
 * Point-in-time copy of the cumulative scalar statistics that
 * KernelStats reports. Gpu::launch captures one before and one after
 * the simulation loop and reports the difference, so per-launch stats
 * stay correct across repeated launches on the same Gpu.
 *
 * The snapshot is a flat vector of every scalar probe in the telemetry
 * StatRegistry, in registry order; delta() folds probe growth into the
 * KernelStats field each probe's KernelStatRole names. Capturing through
 * the registry instead of per-component getters means a component adds
 * a stat to KernelStats by tagging it at registration — no snapshot
 * plumbing.
 */

#ifndef VTSIM_GPU_STATS_SNAPSHOT_HH
#define VTSIM_GPU_STATS_SNAPSHOT_HH

#include <cstdint>
#include <vector>

#include "sim/serializer.hh"
#include "telemetry/stat_registry.hh"

namespace vtsim {

struct KernelStats;

class StatsSnapshot
{
  public:
    static StatsSnapshot capture(const telemetry::StatRegistry &registry);

    /** Accumulate the probe growth since @p before into @p stats,
     *  routed by each probe's role. Only aggregate probes (grid == -1)
     *  contribute — the per-grid split probes mirror them and would
     *  double-count. @p registry must be the one both snapshots were
     *  captured from. */
    void delta(const StatsSnapshot &before,
               const telemetry::StatRegistry &registry,
               KernelStats &stats) const;

    /** As delta(), but summing only the probes attributed to @p grid —
     *  the per-grid KernelStats of one grid in a concurrent launch. */
    void deltaGrid(const StatsSnapshot &before,
                   const telemetry::StatRegistry &registry,
                   std::int32_t grid, KernelStats &stats) const;

    void save(Serializer &ser) const { ser.putVec(values_); }
    void restore(Deserializer &des) { des.getVec(values_); }

  private:
    std::vector<std::uint64_t> values_;
};

} // namespace vtsim

#endif // VTSIM_GPU_STATS_SNAPSHOT_HH
