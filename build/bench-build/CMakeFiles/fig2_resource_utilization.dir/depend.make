# Empty dependencies file for fig2_resource_utilization.
# This may be replaced when dependencies are built.
