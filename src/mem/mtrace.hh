/**
 * @file
 * vtsim-mtrace-v1: the memory-trace record/replay format.
 *
 * A trace captures the post-coalescer access stream of one kernel
 * launch — every line-granular transaction the LDST units inject into
 * the memory hierarchy, with its cycle, SM, size and read/write kind —
 * plus barrier and kernel-launch markers. Replaying a trace drives
 * Cache → Interconnect → MemoryPartition → Dram with the recorded
 * stream while skipping functional execution entirely, which makes
 * memory-hierarchy parameter sweeps (L2 policy, DRAM timing, NoC
 * width) an order of magnitude faster and turns the access stream
 * into a shareable artifact.
 *
 * Layout (all fields little-endian, packed, no padding):
 *   magic   8 bytes  "vtsimMTR"
 *   version u32      1
 *   header:
 *     numSms u32, numMemPartitions u32, l1LineSize u32, l2LineSize u32,
 *     kernelName (u32 length + bytes), grid x/y/z u32, cta x/y/z u32
 *   records, each tagged with a u8 kind:
 *     1 Access:       cycle u64 (relative to the launch marker),
 *                     sm u16, flags u8 (bit0 store, bit1 atomic,
 *                     bit2 bypassL1), lineAddr u64, bytes u16,
 *                     lanes u8, warpTag u32
 *     2 Barrier:      cycle u64, sm u16
 *     3 KernelLaunch: cycle u64 (always 0; must be the first record)
 *     4 End:          recordCount u64 (records before this one)
 *
 * The End record is the integrity seal: a reader treats a file without
 * it — or with a record count that disagrees — as truncated. Readers
 * bounds-check every access and reject malformed input with a clear
 * FatalError, never a crash.
 */

#ifndef VTSIM_MEM_MTRACE_HH
#define VTSIM_MEM_MTRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vtsim {

inline constexpr char mtraceMagic[8] = {'v', 't', 's', 'i',
                                        'm', 'M', 'T', 'R'};
inline constexpr std::uint32_t mtraceVersion = 1;

/** Machine shape and launch geometry the trace was captured under. */
struct MtraceHeader
{
    std::uint32_t numSms = 0;
    std::uint32_t numMemPartitions = 0;
    std::uint32_t l1LineSize = 0;
    std::uint32_t l2LineSize = 0;
    std::string kernelName;
    Dim3 grid;
    Dim3 cta;
};

/** One recorded post-coalescer transaction. */
struct MtraceAccess
{
    /** Cycle relative to the kernel-launch marker. */
    Cycle cycle = 0;
    std::uint16_t sm = 0;
    std::uint8_t flags = 0;
    Addr lineAddr = 0;
    std::uint16_t bytes = 0;
    std::uint8_t lanes = 0;
    /** (virtual CTA slot << 8) | warp-in-CTA at record time. */
    std::uint32_t warpTag = 0;

    static constexpr std::uint8_t flagStore = 1u << 0;
    static constexpr std::uint8_t flagAtomic = 1u << 1;
    static constexpr std::uint8_t flagBypassL1 = 1u << 2;

    bool isStore() const { return flags & flagStore; }
    bool isAtomic() const { return flags & flagAtomic; }
    bool bypassL1() const { return flags & flagBypassL1; }
};

/**
 * Streams a vtsim-mtrace-v1 file during a recording run. The Gpu owns
 * one writer and hands it to every SM; record mode forces sequential
 * simulation, so appends are naturally in cycle order.
 */
class MtraceWriter
{
  public:
    /** Open @p path and write magic/version/header. Cycles passed to
     *  the append calls are rebased to @p launch_cycle. Fatal on I/O
     *  failure. */
    void begin(const std::string &path, const MtraceHeader &header,
               Cycle launch_cycle);

    void access(Cycle now, std::uint32_t sm, std::uint8_t flags,
                Addr line_addr, std::uint32_t bytes, std::uint32_t lanes,
                std::uint32_t warp_tag);
    void barrier(Cycle now, std::uint32_t sm);

    /** Write the End seal and close. Fatal on I/O failure. */
    void end();

    bool active() const { return out_.is_open(); }
    std::uint64_t recordCount() const { return records_; }

  private:
    void put8(std::uint8_t v);
    void put16(std::uint16_t v);
    void put32(std::uint32_t v);
    void put64(std::uint64_t v);

    std::ofstream out_;
    std::string path_;
    Cycle base_ = 0;
    std::uint64_t records_ = 0;
};

/**
 * Loads and validates a vtsim-mtrace-v1 file. All structural damage —
 * bad magic, short file, unknown record kind, out-of-range SM,
 * non-monotonic cycles, missing End seal — is reported as a
 * FatalError naming the offset, never a crash or silent truncation.
 * Access records are sliced per SM for the replay engine.
 */
class MtraceReader
{
  public:
    void load(const std::string &path);

    const MtraceHeader &header() const { return header_; }

    /** Access records of @p sm, in non-decreasing cycle order. */
    const std::vector<MtraceAccess> &
    accesses(std::uint32_t sm) const
    {
        return perSm_[sm];
    }

    std::uint64_t totalAccesses() const { return totalAccesses_; }
    std::uint64_t totalBarriers() const { return totalBarriers_; }

  private:
    MtraceHeader header_;
    std::vector<std::vector<MtraceAccess>> perSm_;
    std::uint64_t totalAccesses_ = 0;
    std::uint64_t totalBarriers_ = 0;
};

} // namespace vtsim

#endif // VTSIM_MEM_MTRACE_HH
