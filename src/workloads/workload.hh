/**
 * @file
 * The benchmark-workload abstraction and the suite registry. Each
 * workload packages a VASM kernel, input synthesis, launch geometry and a
 * host-side reference checker — the role the paper's CUDA benchmarks
 * (Rodinia/Parboil/ISPASS class) play in its evaluation.
 */

#ifndef VTSIM_WORKLOADS_WORKLOAD_HH
#define VTSIM_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "func/global_memory.hh"
#include "isa/kernel.hh"

namespace vtsim {

/** Expected occupancy class of a workload (TAB-2 column). */
enum class WorkloadClass
{
    SchedulingLimited, ///< VT's target population.
    CapacityLimited,   ///< Bounded by registers/shared memory.
};

std::string toString(WorkloadClass cls);

/**
 * One benchmark: owns its problem instance. Use as:
 *   auto w = makeWorkload("vecadd", scale);
 *   Kernel k = w->buildKernel();
 *   LaunchParams lp = w->prepare(gpu.memory());
 *   gpu.launch(k, lp);
 *   bool ok = w->verify(gpu.memory());
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;
    virtual std::string description() const = 0;
    virtual WorkloadClass expectedClass() const = 0;

    /** Assemble the kernel. */
    virtual Kernel buildKernel() const = 0;

    /**
     * Allocate and fill device buffers; remember addresses for verify().
     * @return Launch geometry and parameter block.
     */
    virtual LaunchParams prepare(GlobalMemory &gmem) = 0;

    /** Check device results against the host reference. */
    virtual bool verify(const GlobalMemory &gmem) const = 0;
};

/**
 * Construct one workload by name with a problem-size scale:
 * scale 0 = unit-test tiny, 1 = benchmark default, 2+ = larger.
 * @throws FatalError for an unknown name.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       std::uint32_t scale = 1);

/** All benchmark names, in the canonical TAB-2 order. */
std::vector<std::string> benchmarkNames();

/** Build the whole suite at @p scale. */
std::vector<std::unique_ptr<Workload>>
makeBenchmarkSuite(std::uint32_t scale = 1);

} // namespace vtsim

#endif // VTSIM_WORKLOADS_WORKLOAD_HH
